#include "ml/serialize.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "common/rng.hpp"
#include "ml/linreg.hpp"
#include "ml/model_zoo.hpp"
#include "ml/nn_models.hpp"

namespace dsml::ml {
namespace {

data::Dataset make_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x1(n);
  std::vector<double> x2(n);
  std::vector<std::string> vendor(n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x1[i] = rng.uniform(0.0, 10.0);
    x2[i] = rng.uniform(0.0, 10.0);
    vendor[i] = rng.chance(0.5) ? "amd corp" : "intel corp";  // spaces!
    y[i] = 40.0 + 3.0 * x1[i] + x2[i] * x2[i] * 0.2 +
           (vendor[i][0] == 'a' ? 4.0 : 0.0) + rng.gaussian(0.0, 0.2);
  }
  data::Dataset ds;
  ds.add_feature(data::Column::numeric("x1", std::move(x1)));
  ds.add_feature(data::Column::numeric("x2", std::move(x2)));
  ds.add_feature(data::Column::categorical("vendor", std::move(vendor)));
  ds.set_target("y", std::move(y));
  return ds;
}

class SerializeModelTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SerializeModelTest, RoundTripPredictionsBitIdentical) {
  const data::Dataset train = make_data(80, 1);
  const data::Dataset test = make_data(30, 2);
  ZooOptions zoo;
  zoo.nn_epoch_scale = 0.25;
  auto model = make_model(GetParam(), zoo).make();
  model->fit(train);

  std::stringstream buffer;
  save_model(*model, buffer);
  const auto restored = load_model(buffer);

  ASSERT_TRUE(restored->fitted());
  EXPECT_EQ(restored->name(), model->name());
  const auto original = model->predict(test);
  const auto reloaded = restored->predict(test);
  ASSERT_EQ(original.size(), reloaded.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(original[i], reloaded[i]);
  }
}

TEST_P(SerializeModelTest, ImportanceSurvivesRoundTrip) {
  const data::Dataset train = make_data(80, 3);
  ZooOptions zoo;
  zoo.nn_epoch_scale = 0.25;
  auto model = make_model(GetParam(), zoo).make();
  model->fit(train);

  std::stringstream buffer;
  save_model(*model, buffer);
  const auto restored = load_model(buffer);
  const auto a = model->importance();
  const auto b = restored->importance();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_DOUBLE_EQ(a[i].importance, b[i].importance);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModelKinds, SerializeModelTest,
                         ::testing::Values("LR-E", "LR-B", "LR-S", "NN-S",
                                           "NN-Q", "NN-E"),
                         [](const auto& info) {
                           std::string name = info.param;
                           name.erase(
                               std::remove(name.begin(), name.end(), '-'),
                               name.end());
                           return name;
                         });

TEST(Serialize, FileRoundTrip) {
  const data::Dataset train = make_data(60, 4);
  LinearRegression model;
  model.fit(train);
  const std::string path =
      (std::filesystem::temp_directory_path() / "dsml_model_test" /
       "model.dsml").string();
  save_model(model, path);
  const auto restored = load_model(path);
  EXPECT_EQ(restored->name(), "LR-B");
  std::filesystem::remove_all(
      std::filesystem::temp_directory_path() / "dsml_model_test");
}

TEST(Serialize, UnfittedModelThrows) {
  LinearRegression model;
  std::stringstream buffer;
  EXPECT_THROW(save_model(model, buffer), InvalidArgument);
}

TEST(Serialize, GarbageInputThrows) {
  std::stringstream buffer("not a model at all");
  EXPECT_THROW(load_model(buffer), IoError);
}

TEST(Serialize, TruncatedInputThrows) {
  const data::Dataset train = make_data(60, 5);
  LinearRegression model;
  model.fit(train);
  std::stringstream buffer;
  save_model(model, buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_model(truncated), IoError);
}

TEST(Serialize, TruncationErrorsReportAByteOffset) {
  const data::Dataset train = make_data(60, 6);
  LinearRegression model;
  model.fit(train);
  std::stringstream buffer;
  save_model(model, buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() - 10));
  try {
    load_model(truncated);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    // The message points at where the stream died so the artifact can be
    // inspected with xxd -s <offset>.
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos)
        << e.what();
  }
}

TEST(Serialize, TrailingGarbageThrowsWithByteOffset) {
  const data::Dataset train = make_data(60, 7);
  LinearRegression model;
  model.fit(train);
  std::stringstream buffer;
  save_model(model, buffer);
  std::stringstream padded(buffer.str() + " unexpected trailing junk");
  try {
    load_model(padded);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("trailing garbage"), std::string::npos) << what;
    EXPECT_NE(what.find("byte"), std::string::npos) << what;
    EXPECT_NE(what.find("unexpected"), std::string::npos) << what;
  }
}

TEST(Serialize, CleanStreamHasNoTrailingGarbageFalsePositive) {
  // Round-tripping an untouched artifact must not trip the trailing-garbage
  // detector (trailing whitespace from the writer is fine).
  const data::Dataset train = make_data(60, 8);
  LinearRegression model;
  model.fit(train);
  std::stringstream buffer;
  save_model(model, buffer);
  EXPECT_NO_THROW(load_model(buffer));
}

TEST(SerialPrimitives, ExpectEndAcceptsWhitespaceOnly) {
  std::stringstream buffer;
  serial::Writer writer(buffer);
  writer.u64(1);
  serial::Reader reader(buffer);
  EXPECT_EQ(reader.u64(), 1u);
  EXPECT_NO_THROW(reader.expect_end());
}

TEST(SerialPrimitives, ReaderOffsetAdvancesWithConsumption) {
  std::stringstream buffer;
  serial::Writer writer(buffer);
  writer.u64(12345);
  writer.str("abc");
  serial::Reader reader(buffer);
  const std::int64_t start = reader.offset();
  EXPECT_EQ(reader.u64(), 12345u);
  EXPECT_GT(reader.offset(), start);
  EXPECT_EQ(reader.str(), "abc");
}

TEST(Serialize, WrongVersionThrows) {
  std::stringstream buffer("dsml-model\n999 6:linreg ");
  EXPECT_THROW(load_model(buffer), IoError);
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_model(std::string("/no/such/file.dsml")), IoError);
}

TEST(SerialPrimitives, StringWithSpacesRoundTrips) {
  std::stringstream buffer;
  serial::Writer writer(buffer);
  writer.str("hello world: 1,2\n3");
  writer.u64(42);
  serial::Reader reader(buffer);
  EXPECT_EQ(reader.str(), "hello world: 1,2\n3");
  EXPECT_EQ(reader.u64(), 42u);
}

TEST(SerialPrimitives, DoubleExactRoundTrip) {
  std::stringstream buffer;
  serial::Writer writer(buffer);
  const double values[] = {0.1, -1e-300, 3.141592653589793, 1e300, 0.0};
  for (double v : values) writer.f64(v);
  serial::Reader reader(buffer);
  for (double v : values) {
    EXPECT_DOUBLE_EQ(reader.f64(), v);
  }
}

}  // namespace
}  // namespace dsml::ml
