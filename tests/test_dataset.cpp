#include "data/dataset.hpp"

#include <gtest/gtest.h>

namespace dsml::data {
namespace {

Dataset make_sample() {
  Dataset ds;
  ds.add_feature(Column::numeric("speed", {1.0, 2.0, 3.0}));
  ds.add_feature(Column::flag("smt", {true, false, true}));
  ds.add_feature(Column::categorical("vendor", {"amd", "intel", "amd"}));
  ds.set_target("perf", {10.0, 20.0, 30.0});
  return ds;
}

TEST(Dataset, BasicShape) {
  const Dataset ds = make_sample();
  EXPECT_EQ(ds.n_rows(), 3u);
  EXPECT_EQ(ds.n_features(), 3u);
  EXPECT_TRUE(ds.has_target());
  EXPECT_EQ(ds.target_name(), "perf");
  EXPECT_DOUBLE_EQ(ds.target_at(1), 20.0);
}

TEST(Dataset, FeatureLookup) {
  const Dataset ds = make_sample();
  EXPECT_EQ(ds.feature("smt").kind(), ColumnKind::kFlag);
  EXPECT_EQ(ds.feature(0).name(), "speed");
  EXPECT_FALSE(ds.find_feature("nonexistent").has_value());
  EXPECT_THROW(ds.feature("nope"), InvalidArgument);
  EXPECT_THROW(ds.feature(9), InvalidArgument);
}

TEST(Dataset, DuplicateFeatureThrows) {
  Dataset ds = make_sample();
  EXPECT_THROW(ds.add_feature(Column::numeric("speed", {0.0, 0.0, 0.0})),
               InvalidArgument);
}

TEST(Dataset, RowCountMismatchThrows) {
  Dataset ds = make_sample();
  EXPECT_THROW(ds.add_feature(Column::numeric("bad", {1.0})), InvalidArgument);
  EXPECT_THROW(ds.set_target("t", {1.0}), InvalidArgument);
}

TEST(Dataset, NoTargetThrows) {
  Dataset ds;
  ds.add_feature(Column::numeric("x", {1.0}));
  EXPECT_FALSE(ds.has_target());
  EXPECT_THROW(ds.target(), InvalidArgument);
  EXPECT_THROW(ds.target_name(), InvalidArgument);
}

TEST(Dataset, SelectRows) {
  const Dataset ds = make_sample();
  const std::vector<std::size_t> rows = {2, 0};
  const Dataset sub = ds.select_rows(rows);
  EXPECT_EQ(sub.n_rows(), 2u);
  EXPECT_DOUBLE_EQ(sub.feature("speed").numeric_at(0), 3.0);
  EXPECT_DOUBLE_EQ(sub.target_at(1), 10.0);
  // Level dictionary preserved even when a level is absent from the subset.
  EXPECT_EQ(sub.feature("vendor").level_count(), 2u);
}

TEST(Dataset, AppendRows) {
  Dataset a = make_sample();
  const Dataset b = make_sample();
  a.append(b);
  EXPECT_EQ(a.n_rows(), 6u);
  EXPECT_DOUBLE_EQ(a.target_at(5), 30.0);
}

TEST(Dataset, AppendSchemaMismatchThrows) {
  Dataset a = make_sample();
  Dataset b;
  b.add_feature(Column::numeric("speed", {1.0}));
  EXPECT_THROW(a.append(b), InvalidArgument);
}

TEST(Dataset, ToCsv) {
  const Dataset ds = make_sample();
  const csv::Table t = ds.to_csv();
  ASSERT_EQ(t.header.size(), 4u);
  EXPECT_EQ(t.header[3], "perf");
  ASSERT_EQ(t.rows.size(), 3u);
  EXPECT_EQ(t.rows[0][2], "amd");
  EXPECT_EQ(t.rows[0][1], "yes");
}

TEST(Dataset, EmptyDatasetRowCount) {
  const Dataset ds;
  EXPECT_EQ(ds.n_rows(), 0u);
}

}  // namespace
}  // namespace dsml::data
