// Fleet-layer tests: consistent-hash shard placement, the coordinator/worker
// wire protocol, shard simulation + merge coverage checks, in-process
// worker/coordinator scatter-gather (the merged table must be bit-identical
// to a single-process sweep, clean AND with workers dying mid-sweep), model
// snapshot shipping through the atomic registry swap, and the supervisor's
// respawn/evict state machine. Carries the fault label (fleet.* and net.*
// failpoints) and the tsan label (server threads + coordinator + pool).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/json.hpp"
#include "common/trace.hpp"
#include "data/column.hpp"
#include "data/dataset.hpp"
#include "dse/campaign.hpp"
#include "dse/sampler.hpp"
#include "dse/sweep.hpp"
#include "engine/registry.hpp"
#include "fleet/evaluator.hpp"
#include "engine/schema.hpp"
#include "fleet/coordinator.hpp"
#include "fleet/hash_ring.hpp"
#include "fleet/protocol.hpp"
#include "fleet/supervisor.hpp"
#include "fleet/worker.hpp"
#include "ml/model_zoo.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "sim/config.hpp"

namespace dsml::fleet {
namespace {

// Tiny sweep options (same scale as test_dse) so every distributed sweep
// stays fast; the space is still the full 4608 configurations.
dse::SweepOptions tiny_sweep() {
  dse::SweepOptions opt;
  opt.full_trace_instructions = 20000;
  opt.interval_instructions = 2000;
  opt.max_clusters = 2;
  opt.use_cache = false;
  return opt;
}

/// The single-process ground truth every distributed result must match
/// bit-for-bit. Computed once per test process.
const dse::SweepResult& golden() {
  static const dse::SweepResult result =
      dse::run_design_space_sweep("mcf", tiny_sweep());
  return result;
}

WorkerOptions loopback_worker() {
  WorkerOptions options;
  options.server.bind_address = "127.0.0.1";
  options.server.port = 0;  // ephemeral
  return options;
}

CoordinatorOptions fast_coordinator(std::size_t max_rounds = 3) {
  CoordinatorOptions options;
  options.connect_timeout_ms = 2000;
  options.ping_timeout_ms = 1000;
  options.request_timeout_ms = 60000;
  options.max_rounds = max_rounds;
  options.sweep = tiny_sweep();
  return options;
}

/// Runs a Worker's event loop on a background thread for a test's duration.
class WorkerRunner {
 public:
  explicit WorkerRunner(Worker& worker)
      : worker_(worker), thread_([this] { worker_.run(); }) {}
  ~WorkerRunner() {
    worker_.request_stop();
    thread_.join();
  }

 private:
  Worker& worker_;
  std::thread thread_;
};

/// A worker fleet of `n` in-process Workers, each with its own registry.
class Fleet {
 public:
  explicit Fleet(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      registries_.push_back(std::make_unique<engine::ModelRegistry>());
      workers_.push_back(
          std::make_unique<Worker>(*registries_.back(), loopback_worker()));
      runners_.push_back(std::make_unique<WorkerRunner>(*workers_.back()));
    }
  }

  std::vector<Endpoint> endpoints() const {
    std::vector<Endpoint> out;
    for (const auto& w : workers_) out.push_back({"127.0.0.1", w->port()});
    return out;
  }

  Worker& worker(std::size_t i) { return *workers_[i]; }
  engine::ModelRegistry& registry(std::size_t i) { return *registries_[i]; }

 private:
  std::vector<std::unique_ptr<engine::ModelRegistry>> registries_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<WorkerRunner>> runners_;
};

/// Same toy mixed-kind training set as the engine tests: instant fits that
/// still exercise the full schema/encoder path.
data::Dataset make_train(std::size_t n) {
  std::vector<double> size_kb, latency, target;
  std::vector<bool> wide;
  std::vector<std::string> predictor;
  const std::vector<std::string> levels = {"weak", "medium", "strong"};
  for (std::size_t i = 0; i < n; ++i) {
    const double s = static_cast<double>(8 << (i % 4));
    const double l = 1.0 + static_cast<double>(i % 5);
    size_kb.push_back(s);
    latency.push_back(l);
    wide.push_back((i % 2) == 0);
    predictor.push_back(levels[i % levels.size()]);
    target.push_back(1000.0 - 3.0 * s + 40.0 * l - 10.0 * double(i % 3));
  }
  data::Dataset d;
  d.add_feature(data::Column::numeric("size_kb", std::move(size_kb)));
  d.add_feature(data::Column::numeric("latency", std::move(latency)));
  d.add_feature(data::Column::flag("wide", std::move(wide)));
  d.add_feature(data::Column::categorical_with_levels(
      "predictor", levels, std::move(predictor), /*ordered=*/true));
  d.set_target("cycles", std::move(target));
  return d;
}

std::shared_ptr<const ml::Regressor> fit_toy(const data::Dataset& train) {
  std::unique_ptr<ml::Regressor> model = ml::make_model("LR-B").make();
  model->fit(train);
  return std::shared_ptr<const ml::Regressor>(std::move(model));
}

// --------------------------------------------------------------- hash ring --

TEST(HashRing, PlacementIsDeterministicAndCoversEveryKey) {
  HashRing a;
  HashRing b;
  for (const char* node : {"w1:1", "w2:2", "w3:3"}) {
    a.add(node);
    b.add(node);
  }
  const auto parts = a.partition(1000);
  std::vector<int> seen(1000, 0);
  for (const auto& [node, indices] : parts) {
    for (std::size_t idx : indices) {
      ASSERT_LT(idx, 1000u);
      seen[idx] += 1;
      EXPECT_EQ(b.owner(idx), node);  // placement is a pure function
    }
  }
  for (int count : seen) EXPECT_EQ(count, 1);
  EXPECT_EQ(parts.size(), 3u);  // 64 replicas: every node owns a slice
}

TEST(HashRing, EvictionMovesOnlyTheEvictedNodesKeys) {
  HashRing ring;
  ring.add("w1:1");
  ring.add("w2:2");
  ring.add("w3:3");
  std::vector<std::string> before;
  for (std::uint64_t k = 0; k < 2000; ++k) before.push_back(ring.owner(k));
  ring.erase("w2:2");
  for (std::uint64_t k = 0; k < 2000; ++k) {
    const std::string& after = ring.owner(k);
    EXPECT_NE(after, "w2:2");
    if (before[k] != "w2:2") {
      // Surviving nodes keep every key they owned: a retry round only
      // re-simulates the dead worker's slice.
      EXPECT_EQ(after, before[k]) << "key " << k;
    }
  }
}

TEST(HashRing, RejectsZeroReplicasAndEmptyLookups) {
  EXPECT_THROW(HashRing(0), InvalidArgument);
  HashRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_THROW(ring.owner(7), StateError);
  EXPECT_THROW(ring.partition(10), StateError);
  ring.add("w:1");
  ring.erase("w:1");
  EXPECT_THROW(ring.owner(7), StateError);
}

// ---------------------------------------------------------------- protocol --

TEST(Protocol, SweepRequestRoundTrips) {
  SweepRequest request;
  request.app = "mcf";
  request.options = tiny_sweep();
  request.options.trace_seed = 99;
  request.indices = {0, 7, 4607};
  const std::string line = encode_sweep_request(request);
  EXPECT_TRUE(is_fleet_request(line));
  const json::Value doc = json::Value::parse(line);
  EXPECT_EQ(fleet_op(doc), "sweep");
  const SweepRequest back = parse_sweep_request(doc);
  EXPECT_EQ(back.app, "mcf");
  EXPECT_EQ(back.indices, request.indices);
  EXPECT_EQ(back.options.full_trace_instructions, 20000u);
  EXPECT_EQ(back.options.interval_instructions, 2000u);
  EXPECT_EQ(back.options.max_clusters, 2u);
  EXPECT_EQ(back.options.trace_seed, 99u);
}

TEST(Protocol, HexCodecRoundTripsAndRejectsMalformedInput) {
  std::string bytes;
  for (int i = 0; i < 256; ++i) bytes.push_back(static_cast<char>(i));
  EXPECT_EQ(decode_hex(encode_hex(bytes)), bytes);
  EXPECT_EQ(encode_hex(""), "");
  EXPECT_THROW(decode_hex("abc"), IoError);   // odd length
  EXPECT_THROW(decode_hex("zz"), IoError);    // non-hex digit
}

TEST(Protocol, NonFleetLinesAreNotFleetRequests) {
  EXPECT_TRUE(is_fleet_request(encode_ping()));
  EXPECT_TRUE(is_fleet_request(encode_shutdown()));
  EXPECT_FALSE(is_fleet_request(R"({"model":"gcc","rows":[{"a":1}]})"));
  EXPECT_FALSE(is_fleet_request(""));
}

TEST(Protocol, ErrorResponsesRethrowAsTaxonomyTypes) {
  const std::string state =
      R"({"ok":false,"fleet":"error","error_type":"StateError","error":"gone"})";
  EXPECT_THROW(parse_response(state, "pong"), StateError);
  const std::string training =
      R"({"ok":false,"fleet":"error","error_type":"TrainingError","error":"x"})";
  EXPECT_THROW(parse_response(training, "shard"), TrainingError);
  // A well-formed response for the wrong operation is a protocol error.
  const std::string pong = R"({"ok":true,"fleet":"pong","models":[]})";
  EXPECT_THROW(parse_response(pong, "shard"), IoError);
}

// ------------------------------------------------------------ shard + merge --

dse::SweepShard slice_of_golden(std::vector<std::size_t> indices) {
  dse::SweepShard shard;
  for (std::size_t idx : indices) shard.cycles.push_back(golden().cycles[idx]);
  shard.indices = std::move(indices);
  shard.simpoint_count = golden().simpoint_count;
  shard.simulated_instructions = golden().simulated_instructions;
  return shard;
}

TEST(SweepShard, MatchesTheFullSweepSlice) {
  const std::vector<std::size_t> indices = {0, 1, 7, 100, 4607};
  const dse::SweepShard shard =
      dse::run_sweep_shard("mcf", tiny_sweep(), indices);
  ASSERT_EQ(shard.cycles.size(), indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(shard.cycles[i], golden().cycles[indices[i]]) << indices[i];
  }
  EXPECT_EQ(shard.simpoint_count, golden().simpoint_count);
  EXPECT_EQ(shard.simulated_instructions, golden().simulated_instructions);
}

TEST(SweepShard, RejectsBadIndexSets) {
  EXPECT_THROW(dse::run_sweep_shard("mcf", tiny_sweep(), {}), InvalidArgument);
  EXPECT_THROW(dse::run_sweep_shard("mcf", tiny_sweep(), {5, 0, 5}),
               InvalidArgument);
  EXPECT_THROW(
      dse::run_sweep_shard("mcf", tiny_sweep(), {sim::kDesignSpaceSize}),
      InvalidArgument);
}

TEST(SweepMerge, ReassemblesTheExactFullSweep) {
  std::vector<std::size_t> evens, odds;
  for (std::size_t i = 0; i < sim::kDesignSpaceSize; ++i) {
    (i % 2 == 0 ? evens : odds).push_back(i);
  }
  const dse::SweepResult merged = dse::merge_sweep_shards(
      "mcf", {slice_of_golden(std::move(evens)),
              slice_of_golden(std::move(odds))});
  ASSERT_EQ(merged.cycles.size(), golden().cycles.size());
  EXPECT_EQ(merged.cycles, golden().cycles);  // bit-identical
  EXPECT_EQ(merged.simpoint_count, golden().simpoint_count);
  EXPECT_EQ(merged.simulated_instructions, golden().simulated_instructions);
}

TEST(SweepMerge, RefusesSilentPartialCoverage) {
  std::vector<std::size_t> all_but_one;
  for (std::size_t i = 1; i < sim::kDesignSpaceSize; ++i) {
    all_but_one.push_back(i);
  }
  EXPECT_THROW(
      dse::merge_sweep_shards("mcf", {slice_of_golden(all_but_one)}),
      StateError);  // one missing configuration
  std::vector<std::size_t> everything = all_but_one;
  everything.push_back(0);
  dse::SweepShard dup = slice_of_golden({0});
  EXPECT_THROW(dse::merge_sweep_shards(
                   "mcf", {slice_of_golden(everything), dup}),
               StateError);  // index 0 covered twice
  dse::SweepShard skewed = slice_of_golden({0});
  skewed.simpoint_count += 1;  // simulated under different conditions
  EXPECT_THROW(dse::merge_sweep_shards(
                   "mcf", {slice_of_golden(all_but_one), skewed}),
               StateError);
  EXPECT_THROW(dse::merge_sweep_shards("mcf", {}), StateError);
}

// ------------------------------------------------------------------ worker --

TEST(FleetWorker, AnswersPingSweepErrorAndShutdown) {
  engine::ModelRegistry registry;
  Worker worker(registry, loopback_worker());
  std::thread loop([&] { worker.run(); });
  net::LineClient client("127.0.0.1", worker.port());

  const json::Value pong = parse_response(client.request(encode_ping()),
                                          "pong");
  EXPECT_TRUE(pong.at("models").items().empty());

  SweepRequest request;
  request.app = "mcf";
  request.options = tiny_sweep();
  request.indices = {0, 3, 9};
  const json::Value doc = parse_response(
      client.request(encode_sweep_request(request)), "shard");
  const ShardResponse shard = parse_shard_response(doc);
  ASSERT_EQ(shard.cycles.size(), 3u);
  EXPECT_EQ(shard.cycles[0], golden().cycles[0]);
  EXPECT_EQ(shard.cycles[1], golden().cycles[3]);
  EXPECT_EQ(shard.cycles[2], golden().cycles[9]);
  EXPECT_EQ(shard.simpoint_count, golden().simpoint_count);

  // An unknown fleet operation is an error *response*; the loop survives.
  EXPECT_THROW(parse_response(client.request(R"({"fleet":"bogus"})"), "any"),
               InvalidArgument);

  parse_response(client.request(encode_shutdown()), "bye");
  loop.join();  // the shutdown request stopped run()

  const WorkerSummary summary = worker.summary();
  EXPECT_EQ(summary.pings, 1u);
  EXPECT_EQ(summary.shards, 1u);
  EXPECT_EQ(summary.errors, 1u);
}

TEST(FleetWorker, DelegatesServeTrafficOnTheSamePort) {
  const data::Dataset train = make_train(24);
  engine::ModelRegistry registry;
  registry.register_model("toy", fit_toy(train), engine::Schema::of(train));
  Worker worker(registry, loopback_worker());
  WorkerRunner runner(worker);
  net::LineClient client("127.0.0.1", worker.port());
  const std::string response = client.request(
      R"({"model":"toy","rows":[{"size_kb":8,"latency":2,"wide":true,)"
      R"("predictor":"weak"}]})");
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;
  EXPECT_NE(response.find("\"predictions\""), std::string::npos) << response;
  EXPECT_EQ(worker.summary().serve.requests, 1u);
  EXPECT_EQ(worker.summary().serve.rows, 1u);
}

// --------------------------------------------------------------- snapshots --

TEST(Snapshots, RoundTripThroughASecondRegistry) {
  const data::Dataset train = make_train(24);
  engine::ModelRegistry source;
  source.register_model("toy", fit_toy(train), engine::Schema::of(train));
  const std::string blob = source.serialize_entry("toy");

  engine::ModelRegistry sink;
  EXPECT_EQ(sink.register_snapshot("toy", blob), 1u);
  EXPECT_EQ(sink.register_snapshot("toy", blob), 2u);  // swap bumps version

  const auto a = source.get("toy");
  const auto b = sink.get("toy");
  EXPECT_EQ(a->schema.fingerprint(), b->schema.fingerprint());
  const std::vector<double> want = a->model->predict(train);
  const std::vector<double> got = b->model->predict(train);
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(want[i], got[i]);
}

TEST(Snapshots, MalformedBlobsAreRejected) {
  engine::ModelRegistry registry;
  EXPECT_THROW(registry.register_snapshot("x", "not a snapshot"), IoError);
  EXPECT_THROW(registry.serialize_entry("missing"), StateError);
}

TEST(Snapshots, PushUpdatesEveryLiveWorker) {
  const data::Dataset train = make_train(24);
  engine::ModelRegistry source;
  source.register_model("toy", fit_toy(train), engine::Schema::of(train));
  const std::string blob = source.serialize_entry("toy");

  Fleet fleet(2);
  const PushResult push =
      push_model_snapshot("toy", blob, fleet.endpoints(), fast_coordinator());
  EXPECT_TRUE(push.failures.empty());
  ASSERT_EQ(push.outcomes.size(), 2u);
  for (const PushOutcome& outcome : push.outcomes) {
    EXPECT_EQ(outcome.version, 1u);
  }
  // The model now answers pings and predict traffic on both workers.
  for (const Endpoint& endpoint : fleet.endpoints()) {
    net::LineClient client(endpoint.host, endpoint.port);
    const json::Value pong =
        parse_response(client.request(encode_ping()), "pong");
    ASSERT_EQ(pong.at("models").items().size(), 1u);
    EXPECT_EQ(pong.at("models").items()[0].as_string(), "toy");
  }
}

// ------------------------------------------------------------- coordinator --

TEST(Coordinator, ParsesAndValidatesEndpoints) {
  const Endpoint e = parse_endpoint("10.0.0.1:9001");
  EXPECT_EQ(e.host, "10.0.0.1");
  EXPECT_EQ(e.port, 9001);
  EXPECT_EQ(e.label(), "10.0.0.1:9001");
  EXPECT_THROW(parse_endpoint("nohost"), InvalidArgument);
  EXPECT_THROW(parse_endpoint("h:0"), InvalidArgument);
  EXPECT_THROW(parse_endpoint("h:70000"), InvalidArgument);
  EXPECT_THROW(parse_endpoint(":9000"), InvalidArgument);
  EXPECT_THROW(coordinator_sweep("mcf", {}, fast_coordinator()),
               InvalidArgument);
}

TEST(Coordinator, ShardedSweepMatchesLocalSweepBitForBit) {
  Fleet fleet(3);
  const FleetSweepResult result =
      coordinator_sweep("mcf", fleet.endpoints(), fast_coordinator());
  EXPECT_EQ(result.sweep.cycles, golden().cycles);  // bit-identical
  EXPECT_EQ(result.sweep.simpoint_count, golden().simpoint_count);
  EXPECT_EQ(result.rounds, 1u);
  EXPECT_EQ(result.workers_used, 3u);
  EXPECT_TRUE(result.failures.empty());
  EXPECT_TRUE(result.evicted.empty());
}

TEST(Coordinator, WorkerDeathMidSweepIsReassignedToSurvivors) {
  Fleet fleet(2);
  // A hostile third "worker": pings fine, then drops dead (process exit
  // stand-in) the moment its shard assignment arrives.
  net::Server* hostile_raw = nullptr;
  net::ServerOptions hostile_options;
  hostile_options.bind_address = "127.0.0.1";
  hostile_options.port = 0;
  auto hostile = std::make_unique<net::Server>(
      hostile_options, [&](std::string_view line) -> std::string {
        if (line.find("\"fleet\":\"ping\"") != std::string_view::npos) {
          return "{\"ok\":true,\"fleet\":\"pong\",\"models\":[]}\n";
        }
        hostile_raw->request_stop();
        return "";
      });
  hostile_raw = hostile.get();
  std::vector<Endpoint> endpoints = fleet.endpoints();
  endpoints.push_back({"127.0.0.1", hostile->port()});
  const std::string hostile_label = endpoints.back().label();
  // Destroying the server on loop exit closes its sockets: the coordinator
  // sees EOF mid-gather, exactly like a killed process.
  std::thread hostile_thread([&] {
    hostile->run();
    hostile.reset();
  });

  const FleetSweepResult result =
      coordinator_sweep("mcf", endpoints, fast_coordinator());
  hostile_thread.join();

  EXPECT_EQ(result.sweep.cycles, golden().cycles);  // still bit-identical
  EXPECT_EQ(result.rounds, 2u);
  EXPECT_EQ(result.workers_used, 2u);
  ASSERT_EQ(result.evicted.size(), 1u);
  EXPECT_EQ(result.evicted[0], hostile_label);
  EXPECT_FALSE(result.failures.empty());
  EXPECT_EQ(result.failures[0].error_type, "IoError");
}

TEST(Coordinator, WorkerSweepFailpointIsRetriedElsewhere) {
  failpoint::ScopedFailpoints armed("fleet.worker.sweep=nth:1");
  Fleet fleet(2);
  const FleetSweepResult result =
      coordinator_sweep("mcf", fleet.endpoints(), fast_coordinator());
  EXPECT_EQ(result.sweep.cycles, golden().cycles);
  EXPECT_EQ(result.rounds, 2u);
  ASSERT_EQ(result.failures.size(), 1u);
  // nth triggers throw NumericalError; the remote taxonomy survives the wire.
  EXPECT_EQ(result.failures[0].error_type, "NumericalError");
  EXPECT_EQ(result.evicted.size(), 1u);
}

TEST(Coordinator, CoordinatorSideFailpointsAreContained) {
  for (const char* spec : {"fleet.coordinator.scatter=nth:1",
                           "fleet.coordinator.gather=nth:1"}) {
    failpoint::ScopedFailpoints armed(spec);
    Fleet fleet(2);
    const FleetSweepResult result =
        coordinator_sweep("mcf", fleet.endpoints(), fast_coordinator());
    EXPECT_EQ(result.sweep.cycles, golden().cycles) << spec;
    EXPECT_EQ(result.rounds, 2u) << spec;
    EXPECT_FALSE(result.failures.empty()) << spec;
  }
}

TEST(Coordinator, TransportFailpointsAreContained) {
  // net.* failpoints fire in the worker's server loop: the first accept /
  // read / write is dropped, the affected connection dies, and the round
  // loop must recover exactly like a real peer death.
  for (const char* spec :
       {"net.accept=nth:1", "net.read=nth:1", "net.write=nth:1"}) {
    failpoint::ScopedFailpoints armed(spec);
    Fleet fleet(1);
    const FleetSweepResult result =
        coordinator_sweep("mcf", fleet.endpoints(), fast_coordinator());
    EXPECT_EQ(result.sweep.cycles, golden().cycles) << spec;
    EXPECT_EQ(result.rounds, 2u) << spec;
    EXPECT_FALSE(result.failures.empty()) << spec;
  }
}

TEST(Coordinator, AllWorkersDeadIsALoudError) {
  // Bind-then-close: a port that refuses connections immediately.
  std::uint16_t dead_port = 0;
  {
    net::Server placeholder(loopback_worker().server, [](std::string_view) {
      return std::string();
    });
    dead_port = placeholder.port();
  }
  CoordinatorOptions options = fast_coordinator(/*max_rounds=*/2);
  options.connect_timeout_ms = 500;
  try {
    coordinator_sweep("mcf", {{"127.0.0.1", dead_port}}, options);
    FAIL() << "expected StateError";
  } catch (const StateError& e) {
    EXPECT_NE(std::string(e.what()).find("unassigned"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------- fleet evaluator --

/// Runs the same adaptive campaign against any ground-truth evaluator; the
/// tests below require the resulting tables to be bit-identical whether the
/// cycles came from the in-memory sweep dataset or over the wire from a
/// worker fleet (evictions included).
dse::CampaignResult adaptive_campaign(const data::Dataset& space,
                                      dse::Evaluator& evaluator) {
  dse::AdaptiveSampler sampler(7);
  dse::CampaignConfig config;
  config.app = "mcf";
  config.space = &space;
  config.sampler = &sampler;
  config.evaluator = &evaluator;
  config.model_names = {"LR-B", "NN-S"};
  config.rounds = dse::budget_rounds(24, 2);
  return dse::Campaign(config).run();
}

TEST(FleetEvaluator, GathersArbitraryIndexSetsBitForBit) {
  Fleet fleet(2);
  FleetEvaluator evaluator("mcf", fleet.endpoints(), fast_coordinator());
  const std::vector<std::size_t> indices = {3, 100, 777, 2047, 4607};
  const dse::SweepShard shard = evaluator.evaluate(indices);
  ASSERT_EQ(shard.indices, indices);
  ASSERT_EQ(shard.cycles.size(), indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(shard.cycles[i], golden().cycles[indices[i]]) << indices[i];
  }
  EXPECT_TRUE(evaluator.drain_failures().empty());
  EXPECT_THROW(evaluator.evaluate({}), InvalidArgument);
  EXPECT_THROW(evaluator.evaluate({5, 5}), InvalidArgument);
  EXPECT_THROW(evaluator.evaluate({sim::kDesignSpaceSize}), InvalidArgument);
}

TEST(FleetEvaluator, CampaignMatchesTheDatasetEvaluatorBitForBit) {
  const data::Dataset space = dse::sweep_dataset(golden());
  dse::DatasetEvaluator local(space);
  const dse::CampaignResult expected = adaptive_campaign(space, local);

  Fleet fleet(3);
  FleetEvaluator remote("mcf", fleet.endpoints(), fast_coordinator());
  const dse::CampaignResult result = adaptive_campaign(space, remote);

  EXPECT_EQ(result.evaluated, expected.evaluated);
  ASSERT_EQ(result.rounds.size(), expected.rounds.size());
  for (std::size_t r = 0; r < expected.rounds.size(); ++r) {
    ASSERT_EQ(result.rounds[r].cells.size(), expected.rounds[r].cells.size());
    for (std::size_t c = 0; c < expected.rounds[r].cells.size(); ++c) {
      EXPECT_EQ(result.rounds[r].cells[c].predictions,
                expected.rounds[r].cells[c].predictions);
      EXPECT_EQ(result.rounds[r].cells[c].estimated_error_max,
                expected.rounds[r].cells[c].estimated_error_max);
    }
    EXPECT_EQ(result.rounds[r].select.chosen_model,
              expected.rounds[r].select.chosen_model);
  }
  EXPECT_TRUE(result.failures.empty());
  EXPECT_TRUE(remote.evicted().empty());
}

TEST(FleetEvaluator, EvictedWorkerMidRoundStillConverges) {
  const data::Dataset space = dse::sweep_dataset(golden());
  dse::DatasetEvaluator local(space);
  const dse::CampaignResult expected = adaptive_campaign(space, local);

  // The first shard request a worker simulates dies (fleet.worker.sweep):
  // the coordinator evicts that worker for the gather round, reassigns its
  // indices to the survivor, and the campaign's table must not change.
  failpoint::ScopedFailpoints armed("fleet.worker.sweep=nth:1");
  Fleet fleet(2);
  FleetEvaluator remote("mcf", fleet.endpoints(), fast_coordinator());
  const dse::CampaignResult result = adaptive_campaign(space, remote);

  EXPECT_EQ(result.evaluated, expected.evaluated);
  ASSERT_EQ(result.rounds.size(), expected.rounds.size());
  for (std::size_t r = 0; r < expected.rounds.size(); ++r) {
    ASSERT_EQ(result.rounds[r].cells.size(), expected.rounds[r].cells.size());
    for (std::size_t c = 0; c < expected.rounds[r].cells.size(); ++c) {
      EXPECT_EQ(result.rounds[r].cells[c].predictions,
                expected.rounds[r].cells[c].predictions);
    }
  }
  EXPECT_EQ(remote.evicted().size(), 1u);
  ASSERT_FALSE(result.failures.empty());
  EXPECT_EQ(result.failures[0].error_type, "NumericalError");
}

// -------------------------------------------------------------- supervisor --

TEST(Supervisor, ValidatesOptions) {
  SupervisorOptions bad;
  bad.exe = "";
  EXPECT_THROW(Supervisor{bad}, InvalidArgument);
  SupervisorOptions zero;
  zero.exe = "/bin/sh";
  zero.workers = 0;
  EXPECT_THROW(Supervisor{zero}, InvalidArgument);
}

TEST(Supervisor, KeepsLiveWorkersRunningAndStopsThem) {
  SupervisorOptions options;
  options.exe = "/bin/sh";
  options.worker_args = {"-c", "sleep 30"};
  options.workers = 2;
  Supervisor supervisor(options);
  EXPECT_EQ(supervisor.endpoints().size(), 2u);
  supervisor.start();
  EXPECT_THROW(supervisor.start(), StateError);
  EXPECT_EQ(supervisor.tick(), 2u);
  supervisor.stop(/*grace_ms=*/200);
  supervisor.stop();  // idempotent
  const SupervisorSummary summary = supervisor.summary();
  EXPECT_EQ(summary.spawns, 2u);
  EXPECT_EQ(summary.respawns, 0u);
  const std::vector<std::string> events = supervisor.drain_events();
  EXPECT_EQ(events.size(), 2u);  // two spawn events
  EXPECT_NE(events[0].find("spawned worker 0"), std::string::npos)
      << events[0];
}

TEST(Supervisor, RespawnsCrashLoopersThenEvictsThem) {
  SupervisorOptions options;
  options.exe = "/bin/sh";
  options.worker_args = {"-c", "exit 7"};
  options.workers = 2;
  options.backoff_initial_ms = 10;
  options.backoff_max_ms = 20;
  options.max_respawns = 1;
  Supervisor supervisor(options);
  supervisor.start();
  trace::Stopwatch deadline;
  while (supervisor.evicted().size() < 2 && deadline.seconds() < 10.0) {
    supervisor.tick();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(supervisor.evicted().size(), 2u);
  const SupervisorSummary summary = supervisor.summary();
  EXPECT_EQ(summary.spawns, 4u);     // 2 initial + 2 respawns
  EXPECT_EQ(summary.respawns, 2u);
  EXPECT_EQ(summary.exits, 4u);
  EXPECT_EQ(summary.evictions, 2u);
  bool saw_eviction = false;
  for (const std::string& event : supervisor.drain_events()) {
    if (event.find("evicted worker") != std::string::npos) {
      saw_eviction = true;
    }
  }
  EXPECT_TRUE(saw_eviction);
  // Eviction closed the listener: coordinators fail fast, not hang.
  const Endpoint endpoint = supervisor.endpoints()[0];
  EXPECT_THROW(net::LineClient(endpoint.host, endpoint.port,
                               net::ClientOptions{500, 500}),
               IoError);
  supervisor.stop();
}

}  // namespace
}  // namespace dsml::fleet
