#include "data/split.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace dsml::data {
namespace {

TEST(SampleFraction, SizeMatchesFraction) {
  Rng rng(1);
  const auto idx = sample_fraction(1000, 0.05, rng);
  EXPECT_EQ(idx.size(), 50u);
}

TEST(SampleFraction, RespectsMinRows) {
  Rng rng(2);
  const auto idx = sample_fraction(1000, 0.001, rng, 10);
  EXPECT_EQ(idx.size(), 10u);
}

TEST(SampleFraction, SortedAndUnique) {
  Rng rng(3);
  const auto idx = sample_fraction(500, 0.2, rng);
  EXPECT_TRUE(std::is_sorted(idx.begin(), idx.end()));
  const std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), idx.size());
}

TEST(SampleFraction, FullFraction) {
  Rng rng(4);
  const auto idx = sample_fraction(20, 1.0, rng);
  EXPECT_EQ(idx.size(), 20u);
}

TEST(SampleFraction, InvalidFractionThrows) {
  Rng rng(5);
  EXPECT_THROW(sample_fraction(10, 0.0, rng), InvalidArgument);
  EXPECT_THROW(sample_fraction(10, 1.5, rng), InvalidArgument);
}

TEST(SampleFraction, DifferentSeedsDifferentSamples) {
  Rng a(6);
  Rng b(7);
  EXPECT_NE(sample_fraction(1000, 0.05, a), sample_fraction(1000, 0.05, b));
}

TEST(Complement, PartitionsRange) {
  Rng rng(8);
  const auto idx = sample_fraction(100, 0.3, rng);
  const auto rest = complement(100, idx);
  EXPECT_EQ(idx.size() + rest.size(), 100u);
  std::set<std::size_t> all(idx.begin(), idx.end());
  all.insert(rest.begin(), rest.end());
  EXPECT_EQ(all.size(), 100u);
}

TEST(Complement, EmptySelection) {
  const auto rest = complement(5, {});
  EXPECT_EQ(rest.size(), 5u);
}

TEST(SplitHalf, PartitionsEvenly) {
  Rng rng(9);
  const auto [a, b] = split_half(10, rng);
  EXPECT_EQ(a.size(), 5u);
  EXPECT_EQ(b.size(), 5u);
  std::set<std::size_t> all(a.begin(), a.end());
  all.insert(b.begin(), b.end());
  EXPECT_EQ(all.size(), 10u);
}

TEST(SplitHalf, OddSizeFirstGetsExtra) {
  Rng rng(10);
  const auto [a, b] = split_half(7, rng);
  EXPECT_EQ(a.size(), 4u);
  EXPECT_EQ(b.size(), 3u);
}

TEST(SplitHalf, TooSmallThrows) {
  Rng rng(11);
  EXPECT_THROW(split_half(1, rng), InvalidArgument);
}

class KFoldTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KFoldTest, FoldsPartitionData) {
  const std::size_t k = GetParam();
  Rng rng(12);
  const std::size_t n = 53;
  const auto folds = k_fold(n, k, rng);
  ASSERT_EQ(folds.size(), k);
  std::vector<int> validation_count(n, 0);
  for (const auto& [train, val] : folds) {
    EXPECT_EQ(train.size() + val.size(), n);
    // Train and validation are disjoint.
    std::set<std::size_t> t(train.begin(), train.end());
    for (std::size_t v : val) {
      EXPECT_EQ(t.count(v), 0u);
      ++validation_count[v];
    }
  }
  // Every row is validated exactly once across folds.
  for (int c : validation_count) EXPECT_EQ(c, 1);
}

INSTANTIATE_TEST_SUITE_P(VariousK, KFoldTest,
                         ::testing::Values(2, 3, 5, 10, 53));

TEST(KFold, InvalidKThrows) {
  Rng rng(13);
  EXPECT_THROW(k_fold(10, 1, rng), InvalidArgument);
  EXPECT_THROW(k_fold(10, 11, rng), InvalidArgument);
}

}  // namespace
}  // namespace dsml::data
