#include "ml/nn_models.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "ml/metrics.hpp"

namespace dsml::ml {
namespace {

// Nonlinear target over three inputs; x3 is pure noise.
data::Dataset make_nonlinear_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x1(n);
  std::vector<double> x2(n);
  std::vector<double> x3(n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x1[i] = rng.uniform(0.0, 1.0);
    x2[i] = rng.uniform(0.0, 1.0);
    x3[i] = rng.uniform(0.0, 1.0);
    y[i] = 100.0 + 50.0 * x1[i] * x1[i] + 30.0 * std::sin(3.0 * x2[i]) +
           rng.gaussian(0.0, 0.5);
  }
  data::Dataset ds;
  ds.add_feature(data::Column::numeric("x1", std::move(x1)));
  ds.add_feature(data::Column::numeric("x2", std::move(x2)));
  ds.add_feature(data::Column::numeric("noise", std::move(x3)));
  ds.set_target("y", std::move(y));
  return ds;
}

double mean_predictor_mape(const data::Dataset& ds) {
  const auto t = ds.target();
  const double m = stats::mean(t);
  std::vector<double> constant(t.size(), m);
  return mape(constant, t);
}

class NnMethodTest : public ::testing::TestWithParam<NnMethod> {};

TEST_P(NnMethodTest, BeatsMeanPredictorOnNonlinearData) {
  const data::Dataset train = make_nonlinear_data(120, 21);
  const data::Dataset test = make_nonlinear_data(60, 22);
  NeuralRegressor::Options opt;
  opt.method = GetParam();
  opt.epoch_scale = 0.5;
  NeuralRegressor model(opt);
  model.fit(train);
  const double err = mape(model.predict(test), test.target());
  EXPECT_LT(err, mean_predictor_mape(test) * 0.5)
      << to_string(GetParam());
  EXPECT_LT(err, 8.0) << to_string(GetParam());
}

TEST_P(NnMethodTest, DeterministicGivenSeed) {
  const data::Dataset train = make_nonlinear_data(60, 23);
  NeuralRegressor::Options opt;
  opt.method = GetParam();
  opt.epoch_scale = 0.25;
  opt.seed = 99;
  NeuralRegressor a(opt);
  NeuralRegressor b(opt);
  a.fit(train);
  b.fit(train);
  const auto pa = a.predict(train);
  const auto pb = b.predict(train);
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_DOUBLE_EQ(pa[i], pb[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, NnMethodTest,
    ::testing::Values(NnMethod::kQuick, NnMethod::kDynamic,
                      NnMethod::kMultiple, NnMethod::kPrune,
                      NnMethod::kExhaustivePrune, NnMethod::kSingle),
    [](const ::testing::TestParamInfo<NnMethod>& info) {
      std::string name = to_string(info.param);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

TEST(NeuralRegressor, NamesMatchPaper) {
  const std::pair<NnMethod, const char*> expected[] = {
      {NnMethod::kQuick, "NN-Q"},     {NnMethod::kDynamic, "NN-D"},
      {NnMethod::kMultiple, "NN-M"},  {NnMethod::kPrune, "NN-P"},
      {NnMethod::kExhaustivePrune, "NN-E"}, {NnMethod::kSingle, "NN-S"},
  };
  for (const auto& [method, name] : expected) {
    NeuralRegressor::Options opt;
    opt.method = method;
    EXPECT_EQ(NeuralRegressor(opt).name(), name);
  }
}

TEST(NeuralRegressor, UnfittedThrows) {
  NeuralRegressor model;
  const data::Dataset ds = make_nonlinear_data(10, 24);
  EXPECT_FALSE(model.fitted());
  EXPECT_THROW(model.predict(ds), InvalidArgument);
  EXPECT_THROW(model.network(), InvalidArgument);
  EXPECT_TRUE(model.importance().empty());
}

TEST(NeuralRegressor, RequiresTargetAndRows) {
  NeuralRegressor model;
  data::Dataset no_target;
  no_target.add_feature(data::Column::numeric("x", {1.0, 2.0, 3.0, 4.0}));
  EXPECT_THROW(model.fit(no_target), InvalidArgument);
  const data::Dataset tiny = make_nonlinear_data(3, 25);
  EXPECT_THROW(model.fit(tiny), InvalidArgument);
}

TEST(NeuralRegressor, ImportanceRanksRealPredictorsAboveNoise) {
  const data::Dataset train = make_nonlinear_data(200, 26);
  NeuralRegressor::Options opt;
  opt.method = NnMethod::kQuick;
  opt.epoch_scale = 0.5;
  NeuralRegressor model(opt);
  model.fit(train);
  const auto importance = model.importance();
  ASSERT_EQ(importance.size(), 3u);
  double noise_importance = 0.0;
  double x1_importance = 0.0;
  for (const auto& imp : importance) {
    EXPECT_GE(imp.importance, 0.0);
    EXPECT_LE(imp.importance, 1.0);
    if (imp.name == "noise") noise_importance = imp.importance;
    if (imp.name == "x1") x1_importance = imp.importance;
  }
  EXPECT_GT(x1_importance, noise_importance);
  // Sorted descending.
  for (std::size_t i = 1; i < importance.size(); ++i) {
    EXPECT_GE(importance[i - 1].importance, importance[i].importance);
  }
}

TEST(NeuralRegressor, HandlesCategoricalInputs) {
  Rng rng(27);
  const std::size_t n = 120;
  std::vector<std::string> vendor;
  std::vector<double> x;
  std::vector<double> y;
  for (std::size_t i = 0; i < n; ++i) {
    const bool amd = rng.chance(0.5);
    vendor.push_back(amd ? "amd" : "intel");
    x.push_back(rng.uniform());
    y.push_back(10.0 + (amd ? 5.0 : 0.0) + 2.0 * x.back() +
                rng.gaussian(0.0, 0.05));
  }
  data::Dataset ds;
  ds.add_feature(data::Column::categorical("vendor", std::move(vendor)));
  ds.add_feature(data::Column::numeric("x", std::move(x)));
  ds.set_target("y", std::move(y));
  NeuralRegressor::Options opt;
  opt.method = NnMethod::kQuick;
  opt.epoch_scale = 0.5;
  NeuralRegressor model(opt);
  model.fit(ds);
  EXPECT_LT(mape(model.predict(ds), ds.target()), 5.0);
  // The categorical's importance is reported under its own name.
  const auto importance = model.importance();
  bool found_vendor = false;
  for (const auto& imp : importance) found_vendor |= imp.name == "vendor";
  EXPECT_TRUE(found_vendor);
}

TEST(NeuralRegressor, PruneReducesNetworkRelativeToStart) {
  const data::Dataset train = make_nonlinear_data(100, 28);
  NeuralRegressor::Options opt;
  opt.method = NnMethod::kPrune;
  opt.epoch_scale = 0.25;
  NeuralRegressor model(opt);
  model.fit(train);
  // NN-P starts from 2x inputs (= 6 units for 3 inputs, floored to >= 4);
  // after pruning the surviving network should not exceed the start size.
  ASSERT_EQ(model.network().hidden_sizes().size(), 1u);
  EXPECT_LE(model.network().hidden_sizes()[0], 6u);
  EXPECT_GE(model.network().hidden_sizes()[0], 1u);
}

TEST(NeuralRegressor, EpochScaleValidated) {
  NeuralRegressor::Options opt;
  opt.epoch_scale = 0.0;
  EXPECT_THROW(NeuralRegressor{opt}, InvalidArgument);
  opt.epoch_scale = 1.0;
  opt.momentum = 1.0;
  EXPECT_THROW(NeuralRegressor{opt}, InvalidArgument);
}

TEST(NeuralRegressor, SeedChangesModel) {
  const data::Dataset train = make_nonlinear_data(80, 29);
  NeuralRegressor::Options opt;
  opt.method = NnMethod::kSingle;
  opt.epoch_scale = 0.25;
  opt.seed = 1;
  NeuralRegressor a(opt);
  a.fit(train);
  opt.seed = 2;
  NeuralRegressor b(opt);
  b.fit(train);
  const auto pa = a.predict(train);
  const auto pb = b.predict(train);
  bool any_difference = false;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    any_difference |= pa[i] != pb[i];
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace dsml::ml
