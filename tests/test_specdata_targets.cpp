// Tests for the SPECfp and individual-application rating targets.
#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "dse/chronological.hpp"
#include "specdata/generator.hpp"
#include "specdata/spec_metric.hpp"

namespace dsml::specdata {
namespace {

TEST(FpRating, PresentAndConsistent) {
  for (const auto& r : generate_family(Family::kOpteron, {})) {
    EXPECT_GT(r.spec_fp_rating, 0.0);
    ASSERT_EQ(r.int_app_runtimes.size(), specint2000_apps().size());
    ASSERT_EQ(r.fp_app_runtimes.size(), specfp2000_apps().size());
    // The stored ratings equal the SPEC metric over the stored runtimes.
    EXPECT_NEAR(r.spec_rating,
                spec_rating(specint2000_apps(), r.int_app_runtimes), 1e-9);
    EXPECT_NEAR(r.spec_fp_rating,
                spec_rating(specfp2000_apps(), r.fp_app_runtimes), 1e-9);
  }
}

TEST(FpRating, CorrelatesWithIntRating) {
  // Same hidden machine performance drives both suites.
  std::vector<double> int_ratings;
  std::vector<double> fp_ratings;
  for (const auto& r : generate_family(Family::kXeon, {})) {
    int_ratings.push_back(r.spec_rating);
    fp_ratings.push_back(r.spec_fp_rating);
  }
  EXPECT_GT(stats::pearson(int_ratings, fp_ratings), 0.8);
}

TEST(FpRating, OpteronRelativelyStrongerThanPentium4) {
  // fp/int ratio reflects the documented architectural difference.
  auto mean_ratio = [](Family family) {
    stats::RunningStats rs;
    for (const auto& r : generate_family(family, {})) {
      rs.add(r.spec_fp_rating / r.spec_rating);
    }
    return rs.mean();
  };
  EXPECT_GT(mean_ratio(Family::kOpteron), mean_ratio(Family::kPentium4));
}

TEST(RatingTarget, Names) {
  EXPECT_EQ(RatingTarget::int_rate().name(), "specint_rate");
  EXPECT_EQ(RatingTarget::fp_rate().name(), "specfp_rate");
  EXPECT_EQ(RatingTarget::int_app(3).name(), "ratio:181.mcf");
  EXPECT_EQ(RatingTarget::fp_app(3).name(), "ratio:173.applu");
}

TEST(RatingTarget, ValuesMatchRecords) {
  const auto records = generate_family(Family::kPentiumD, {});
  const Announcement& r = records.front();
  EXPECT_DOUBLE_EQ(RatingTarget::int_rate().value(r), r.spec_rating);
  EXPECT_DOUBLE_EQ(RatingTarget::fp_rate().value(r), r.spec_fp_rating);
  EXPECT_NEAR(RatingTarget::int_app(0).value(r),
              spec_ratio(specint2000_apps()[0].reference_seconds,
                         r.int_app_runtimes[0]),
              1e-12);
}

TEST(RatingTarget, OutOfRangeAppThrows) {
  const auto records = generate_family(Family::kXeon, {});
  EXPECT_THROW(RatingTarget::int_app(99).value(records.front()),
               std::exception);
}

TEST(RatingTarget, DatasetTargetSelected) {
  const auto records = generate_family(Family::kXeon, {});
  const data::Dataset fp = to_dataset(records, RatingTarget::fp_rate());
  EXPECT_EQ(fp.target_name(), "specfp_rate");
  EXPECT_DOUBLE_EQ(fp.target_at(0), records[0].spec_fp_rating);
  const data::Dataset app =
      to_dataset(records, RatingTarget::int_app(2));
  EXPECT_EQ(app.target_name(), "ratio:176.gcc");
}

TEST(ChronologicalFp, LinearRegressionStillAccurate) {
  dse::ChronologicalOptions options;
  options.model_names = {"LR-E"};
  options.target = RatingTarget::fp_rate();
  const auto result = dse::run_chronological(Family::kXeon, options);
  EXPECT_LT(result.best().error.mean, 5.0);
}

TEST(ChronologicalPerApp, PredictableWithinReason) {
  // The paper: individual applications "can also be accurately estimated".
  dse::ChronologicalOptions options;
  options.model_names = {"LR-E"};
  options.target = RatingTarget::int_app(0);  // 164.gzip
  const auto result = dse::run_chronological(Family::kXeon, options);
  EXPECT_LT(result.best().error.mean, 6.0);
}

}  // namespace
}  // namespace dsml::specdata
