#include "sim/config.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dsml::sim {
namespace {

TEST(DesignSpace, ExactlyPaperSize) {
  const auto space = enumerate_design_space();
  EXPECT_EQ(space.size(), kDesignSpaceSize);
  EXPECT_EQ(space.size(), 4608u);
}

TEST(DesignSpace, AllConfigurationsValid) {
  for (const auto& config : enumerate_design_space()) {
    EXPECT_NO_THROW(config.validate());
  }
}

TEST(DesignSpace, KeysAreUnique) {
  std::set<std::string> keys;
  for (const auto& config : enumerate_design_space()) {
    keys.insert(config.key());
  }
  EXPECT_EQ(keys.size(), kDesignSpaceSize);
}

TEST(DesignSpace, EveryTableOneParameterVaries) {
  const auto space = enumerate_design_space();
  auto varies = [&](auto getter) {
    for (const auto& c : space) {
      if (getter(c) != getter(space.front())) return true;
    }
    return false;
  };
  EXPECT_TRUE(varies([](auto& c) { return c.l1d_size_kb; }));
  EXPECT_TRUE(varies([](auto& c) { return c.l1d_line_b; }));
  EXPECT_TRUE(varies([](auto& c) { return c.l1i_size_kb; }));
  EXPECT_TRUE(varies([](auto& c) { return c.l1i_line_b; }));
  EXPECT_TRUE(varies([](auto& c) { return c.l2_size_kb; }));
  EXPECT_TRUE(varies([](auto& c) { return c.l2_assoc; }));
  EXPECT_TRUE(varies([](auto& c) { return c.l3_size_mb; }));
  EXPECT_TRUE(varies([](auto& c) { return c.l3_line_b; }));
  EXPECT_TRUE(varies([](auto& c) { return c.l3_assoc; }));
  EXPECT_TRUE(varies([](auto& c) { return c.branch_predictor; }));
  EXPECT_TRUE(varies([](auto& c) { return c.width; }));
  EXPECT_TRUE(varies([](auto& c) { return c.issue_wrong; }));
  EXPECT_TRUE(varies([](auto& c) { return c.ruu_size; }));
  EXPECT_TRUE(varies([](auto& c) { return c.lsq_size; }));
  EXPECT_TRUE(varies([](auto& c) { return c.itlb_size_kb; }));
  EXPECT_TRUE(varies([](auto& c) { return c.dtlb_size_kb; }));
  EXPECT_TRUE(varies([](auto& c) { return c.fu.ialu; }));
}

TEST(DesignSpace, DocumentedTiesHold) {
  for (const auto& c : enumerate_design_space()) {
    // Queue/TLB resources scale together.
    EXPECT_EQ(c.ruu_size == 256, c.lsq_size == 128);
    EXPECT_EQ(c.ruu_size == 256, c.itlb_size_kb == 1024);
    EXPECT_EQ(c.ruu_size == 256, c.dtlb_size_kb == 2048);
    // FU mix follows width.
    EXPECT_EQ(c.width == 8, c.fu.ialu == 8);
    // L1 line size shared between I and D.
    EXPECT_EQ(c.l1d_line_b, c.l1i_line_b);
    // L3 parameters present/absent together.
    EXPECT_EQ(c.l3_size_mb > 0, c.l3_line_b > 0);
    EXPECT_EQ(c.l3_size_mb > 0, c.l3_assoc > 0);
  }
}

TEST(ConfigValidation, RejectsOffMenuValues) {
  ProcessorConfig c;  // defaults are valid
  EXPECT_NO_THROW(c.validate());
  ProcessorConfig bad = c;
  bad.l1d_size_kb = 48;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = c;
  bad.width = 6;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = c;
  bad.l3_size_mb = 8;  // without line/assoc
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = c;
  bad.fu.imult = 3;
  EXPECT_THROW(bad.validate(), InvalidArgument);
}

TEST(ConfigDataset, TwentyFourFeatures) {
  const auto space = enumerate_design_space();
  const data::Dataset ds = make_config_dataset(space);
  EXPECT_EQ(ds.n_features(), 24u);
  EXPECT_EQ(ds.n_rows(), kDesignSpaceSize);
  EXPECT_FALSE(ds.has_target());
}

TEST(ConfigDataset, TargetAttached) {
  const std::vector<ProcessorConfig> two(2, ProcessorConfig{});
  const data::Dataset ds = make_config_dataset(two, {10.0, 20.0});
  EXPECT_TRUE(ds.has_target());
  EXPECT_DOUBLE_EQ(ds.target_at(1), 20.0);
  EXPECT_EQ(ds.target_name(), "cycles");
}

TEST(ConfigDataset, CyclesSizeMismatchThrows) {
  const std::vector<ProcessorConfig> two(2, ProcessorConfig{});
  EXPECT_THROW(make_config_dataset(two, {1.0}), InvalidArgument);
}

TEST(ConfigDataset, BranchPredictorOrderedCategorical) {
  const auto space = enumerate_design_space();
  const data::Dataset ds = make_config_dataset(space);
  const data::Column& bp = ds.feature("branch_predictor");
  EXPECT_EQ(bp.kind(), data::ColumnKind::kCategorical);
  EXPECT_TRUE(bp.ordered());
  EXPECT_EQ(bp.level_count(), 4u);
}

TEST(FunctionalUnitMix, ToString) {
  const FunctionalUnitMix mix{4, 2, 2, 4, 2};
  EXPECT_EQ(mix.to_string(), "4/2/2/4/2");
}

TEST(BranchPredictorKind, Names) {
  EXPECT_STREQ(to_string(BranchPredictorKind::kPerfect), "perfect");
  EXPECT_STREQ(to_string(BranchPredictorKind::kBimodal), "bimodal");
  EXPECT_STREQ(to_string(BranchPredictorKind::kTwoLevel), "2-level");
  EXPECT_STREQ(to_string(BranchPredictorKind::kCombination), "combination");
}

}  // namespace
}  // namespace dsml::sim
