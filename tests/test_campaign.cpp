// Campaign-engine tests: the sampler seam (random/adaptive/full selection
// policies and their determinism contract), ensemble disagreement, budget
// splitting, the shared failure banner, evaluator validation, the Pareto
// scorer, and whole-campaign determinism — the adaptive campaign must
// produce bit-identical tables run-to-run, which the tsan label extends to
// "across DSML_THREADS values" (the tsan suite runs with DSML_THREADS=4,
// the release suite with the default).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "data/split.hpp"
#include "dse/campaign.hpp"
#include "dse/sampler.hpp"
#include "ml/ensemble.hpp"
#include "sim/config.hpp"

namespace dsml::dse {
namespace {

/// A small design-space slice with analytic cycle counts: real schema and
/// encoders, no simulation, so campaigns stay fast and fully deterministic.
data::Dataset toy_space(std::size_t n) {
  std::vector<sim::ProcessorConfig> configs = sim::enumerate_design_space();
  configs.resize(n);
  std::vector<double> cycles;
  cycles.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    cycles.push_back(50000.0 + 900.0 * static_cast<double>(i % 7) +
                     37.0 * static_cast<double>(i));
  }
  return sim::make_config_dataset(configs, std::move(cycles));
}

CampaignConfig toy_config(const data::Dataset& space, Sampler& sampler,
                          Evaluator& evaluator) {
  CampaignConfig config;
  config.app = "toy";
  config.space = &space;
  config.sampler = &sampler;
  config.evaluator = &evaluator;
  config.model_names = {"LR-B", "NN-S"};
  return config;
}

// ---------------------------------------------------------------- ensemble --

TEST(EnsembleDisagreement, FewerThanTwoMembersIsZero) {
  EXPECT_TRUE(ml::ensemble_disagreement(
                  std::vector<std::vector<double>>{})
                  .empty());
  const std::vector<std::vector<double>> one = {{1.0, 2.0, 3.0}};
  EXPECT_EQ(ml::ensemble_disagreement(one),
            (std::vector<double>{0.0, 0.0, 0.0}));
}

TEST(EnsembleDisagreement, RelativePopulationStddevAcrossMembers) {
  const std::vector<std::vector<double>> members = {{1.0, 2.0}, {1.0, 4.0}};
  const std::vector<double> d = ml::ensemble_disagreement(members);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0], 0.0);        // full agreement
  EXPECT_DOUBLE_EQ(d[1], 1.0 / 3.0);  // sd 1 over mean 3
}

TEST(EnsembleDisagreement, RejectsLengthMismatch) {
  const std::vector<std::vector<double>> members = {{1.0, 2.0}, {1.0}};
  EXPECT_THROW(ml::ensemble_disagreement(members), InvalidArgument);
}

// ---------------------------------------------------------------- samplers --

TEST(RandomSamplerTest, RateRoundsMatchSampleFractionBitForBit) {
  RandomSampler sampler(42);
  SamplerRound round;
  round.rate = 0.02;
  SamplerContext ctx;
  ctx.space_rows = 4608;
  const std::vector<std::size_t> picks = sampler.select(round, ctx);

  Rng rng(42);
  const std::vector<std::size_t> expected =
      data::sample_fraction(4608, 0.02, rng, 10);
  EXPECT_EQ(picks, expected);
}

TEST(RandomSamplerTest, CountRoundsDrawFromTheUnevaluatedPool) {
  RandomSampler sampler(7);
  SamplerRound round;
  round.count = 5;
  std::vector<std::uint8_t> done(20, 0);
  for (const std::size_t idx : {0u, 1u, 2u, 3u}) done[idx] = 1;
  SamplerContext ctx;
  ctx.space_rows = 20;
  ctx.evaluated = &done;
  ctx.evaluated_count = 4;
  const std::vector<std::size_t> picks = sampler.select(round, ctx);
  ASSERT_EQ(picks.size(), 5u);
  EXPECT_TRUE(std::is_sorted(picks.begin(), picks.end()));
  for (const std::size_t p : picks) {
    EXPECT_GE(p, 4u);  // never an already-evaluated row
    EXPECT_LT(p, 20u);
  }
  EXPECT_EQ(std::adjacent_find(picks.begin(), picks.end()), picks.end());
}

TEST(RandomSamplerTest, BudgetBeyondThePoolIsRejected) {
  RandomSampler sampler(7);
  SamplerRound round;
  round.count = 21;
  SamplerContext ctx;
  ctx.space_rows = 20;
  EXPECT_THROW(sampler.select(round, ctx), InvalidArgument);
}

TEST(AdaptiveSamplerTest, RanksByDisagreementWithAscendingTieBreak) {
  AdaptiveSampler sampler(7);
  SamplerRound round;
  round.count = 3;
  std::vector<std::uint8_t> done(8, 0);
  done[5] = 1;  // the highest-disagreement row is already simulated
  const std::vector<double> d = {0.1, 0.7, 0.3, 0.7, 0.0, 0.9, 0.2, 0.05};
  SamplerContext ctx;
  ctx.space_rows = 8;
  ctx.evaluated = &done;
  ctx.evaluated_count = 1;
  ctx.disagreement = &d;
  // Top of the pool: 1 and 3 tie at 0.7 (ascending index keeps both, in
  // order), then 2 at 0.3. Row 5 is excluded despite 0.9.
  EXPECT_EQ(sampler.select(round, ctx),
            (std::vector<std::size_t>{1, 2, 3}));
}

TEST(AdaptiveSamplerTest, SeedsUniformlyWithoutACommittee) {
  SamplerRound round;
  round.count = 6;
  SamplerContext ctx;
  ctx.space_rows = 50;
  AdaptiveSampler a(99);
  AdaptiveSampler b(99);
  const auto first = a.select(round, ctx);
  EXPECT_EQ(first, b.select(round, ctx));  // same seed, same picks
  ASSERT_EQ(first.size(), 6u);
  EXPECT_TRUE(std::is_sorted(first.begin(), first.end()));
}

TEST(AdaptiveSamplerTest, FarthestPointSeedIsCentroidOutAndSeedFree) {
  // A 1-D line of 9 points: the centroid seed takes the middle, then the
  // greedy sweep alternates to the extremes — no RNG involved, so two
  // samplers with different seeds agree exactly.
  data::Dataset space;
  std::vector<double> xs(9);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<double>(i);
  }
  space.add_feature(data::Column::numeric("x", xs));
  SamplerRound round;
  round.count = 3;
  SamplerContext ctx;
  ctx.space_rows = space.n_rows();
  ctx.space = &space;
  AdaptiveSampler a(7);
  AdaptiveSampler b(1234);
  const auto picks = a.select(round, ctx);
  EXPECT_EQ(picks, (std::vector<std::size_t>{0, 4, 8}));
  EXPECT_EQ(picks, b.select(round, ctx));
}

TEST(AdaptiveSamplerTest, CommitteeShortlistsThenSpreadsOut) {
  // Disagreement concentrates on rows 0..9 of a 40-point line; the batch
  // must stay inside that shortlist but spread across it (the centroid-most
  // row, then the farthest end) instead of taking the top-2 ranking.
  data::Dataset space;
  std::vector<double> xs(40);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<double>(i);
  }
  space.add_feature(data::Column::numeric("x", xs));
  std::vector<double> d(40, 0.0);
  for (std::size_t i = 0; i < 10; ++i) d[i] = 1.0;
  SamplerRound round;
  round.count = 2;
  SamplerContext ctx;
  ctx.space_rows = space.n_rows();
  ctx.space = &space;
  ctx.disagreement = &d;
  AdaptiveSampler sampler(7);
  const auto picks = sampler.select(round, ctx);
  ASSERT_EQ(picks.size(), 2u);
  for (const std::size_t p : picks) EXPECT_LT(p, 10u);  // inside shortlist
  EXPECT_GE(picks[1] - picks[0], 4u);  // spread, not the top-2 ranking
  AdaptiveSampler again(99);
  EXPECT_EQ(picks, again.select(round, ctx));  // and seed-free
}

TEST(SamplerFactory, MakesRandomAndAdaptiveAndRejectsUnknown) {
  EXPECT_EQ(make_sampler("random", 7, "mcf")->name(), "random");
  EXPECT_EQ(make_sampler("adaptive", 7, "mcf")->name(), "adaptive");
  EXPECT_THROW(make_sampler("greedy", 7, "mcf"), InvalidArgument);
}

// ------------------------------------------------------------------ config --

TEST(BudgetRounds, SplitsWithRemainderOnEarlierRounds) {
  const std::vector<SamplerRound> plan = budget_rounds(10, 3);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0].count, 4u);
  EXPECT_EQ(plan[1].count, 3u);
  EXPECT_EQ(plan[2].count, 3u);
  EXPECT_EQ(plan[0].label, "r1");
  EXPECT_EQ(plan[2].label, "r3");
  EXPECT_EQ(plan[0].seed_salt, 1u);
  EXPECT_EQ(plan[2].seed_salt, 3u);
  EXPECT_THROW(budget_rounds(2, 3), InvalidArgument);
  EXPECT_THROW(budget_rounds(5, 0), InvalidArgument);
}

TEST(FailureSummary, FormatsTheSharedBanner) {
  EXPECT_EQ(format_failure_summary({}), "");
  const std::vector<FailureRecord> failures = {
      {"LR-B@1%", "NumericalError", "singular system"},
      {"host:9001", "IoError", "connection refused"}};
  EXPECT_EQ(format_failure_summary(failures),
            "2 failure(s) tolerated:\n"
            "  LR-B@1% [NumericalError] singular system\n"
            "  host:9001 [IoError] connection refused\n");
}

// -------------------------------------------------------------- evaluators --

TEST(DatasetEvaluatorTest, SlicesTargetsAndValidates) {
  const data::Dataset space = toy_space(30);
  DatasetEvaluator evaluator(space);
  const SweepShard shard = evaluator.evaluate({0, 7, 29});
  EXPECT_EQ(shard.indices, (std::vector<std::size_t>{0, 7, 29}));
  ASSERT_EQ(shard.cycles.size(), 3u);
  EXPECT_EQ(shard.cycles[0], space.target_at(0));
  EXPECT_EQ(shard.cycles[2], space.target_at(29));
  EXPECT_THROW(evaluator.evaluate({30}), InvalidArgument);

  std::vector<sim::ProcessorConfig> few = sim::enumerate_design_space();
  few.resize(4);
  const data::Dataset no_target = sim::make_config_dataset(few);
  EXPECT_THROW(DatasetEvaluator{no_target}, InvalidArgument);
}

// ------------------------------------------------------------------ scorer --

TEST(SynthesizedEnergy, GrowsWithWidthAndCache) {
  sim::ProcessorConfig base = sim::enumerate_design_space().front();
  sim::ProcessorConfig wide = base;
  wide.width = base.width * 2;
  EXPECT_GT(synthesized_energy(wide), synthesized_energy(base));
  sim::ProcessorConfig big_l3 = base;
  big_l3.l3_size_mb = 4;  // the front config has no L3 at all
  EXPECT_GT(synthesized_energy(big_l3), synthesized_energy(base));
}

TEST(ParetoScorerTest, FrontierIsNonDominatedAndDeterministic) {
  ParetoScorer scorer;
  std::vector<double> predictions(sim::kDesignSpaceSize);
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    predictions[i] = 1e6 + 13.0 * static_cast<double>((i * 2654435761u) %
                                                      100003u);
  }
  CampaignResult result;
  scorer.finalize(predictions, result);
  ASSERT_FALSE(result.pareto.empty());
  for (std::size_t i = 1; i < result.pareto.size(); ++i) {
    EXPECT_GE(result.pareto[i].cycles, result.pareto[i - 1].cycles);
    EXPECT_LT(result.pareto[i].energy, result.pareto[i - 1].energy);
  }
  // Wrong-size predictions cannot silently score a different space.
  EXPECT_THROW(scorer.finalize({1.0, 2.0}, result), InvalidArgument);
}

// ---------------------------------------------------------------- campaign --

TEST(CampaignTest, ValidatesItsConfig) {
  const data::Dataset space = toy_space(20);
  RandomSampler sampler(7);
  DatasetEvaluator evaluator(space);
  CampaignConfig config = toy_config(space, sampler, evaluator);
  config.space = nullptr;
  EXPECT_THROW(Campaign{config}, InvalidArgument);
  config = toy_config(space, sampler, evaluator);
  config.rounds.clear();
  EXPECT_THROW(Campaign{config}, InvalidArgument);
  config = toy_config(space, sampler, evaluator);
  config.rounds = budget_rounds(8, 2);
  config.model_names.clear();
  EXPECT_THROW(Campaign{config}, InvalidArgument);
}

/// Runs an adaptive campaign over the toy space; the determinism tests
/// compare everything two runs produce.
CampaignResult run_adaptive(const data::Dataset& space) {
  AdaptiveSampler sampler(7);
  DatasetEvaluator evaluator(space);
  CampaignConfig config = toy_config(space, sampler, evaluator);
  config.rounds = budget_rounds(30, 3);
  return Campaign(config).run();
}

TEST(CampaignTest, AdaptiveCampaignIsBitIdenticalRunToRun) {
  const data::Dataset space = toy_space(200);
  const CampaignResult a = run_adaptive(space);
  const CampaignResult b = run_adaptive(space);

  EXPECT_EQ(a.evaluated, b.evaluated);
  ASSERT_EQ(a.rounds.size(), 3u);
  ASSERT_EQ(b.rounds.size(), 3u);
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    const CampaignRound& ra = a.rounds[r];
    const CampaignRound& rb = b.rounds[r];
    EXPECT_EQ(ra.train_rows, rb.train_rows);
    ASSERT_EQ(ra.cells.size(), rb.cells.size());
    for (std::size_t c = 0; c < ra.cells.size(); ++c) {
      EXPECT_EQ(ra.cells[c].model, rb.cells[c].model);
      EXPECT_EQ(ra.cells[c].estimated_error_max,
                rb.cells[c].estimated_error_max);
      EXPECT_EQ(ra.cells[c].true_error, rb.cells[c].true_error);
      EXPECT_EQ(ra.cells[c].predictions, rb.cells[c].predictions);
    }
    EXPECT_EQ(ra.select.chosen_model, rb.select.chosen_model);
  }
  // Adaptive rounds actually adapt: round 2 must not be the uniform seed
  // batch (it ranks by the round-1 committee), and the training set grows.
  EXPECT_EQ(a.rounds.front().train_rows, 10u);
  EXPECT_EQ(a.rounds.back().train_rows, 30u);
  EXPECT_EQ(a.evaluated.size(), 30u);
}

TEST(CampaignTest, RoundFailpointCostsARecordNotTheTable) {
  const data::Dataset space = toy_space(120);
  const auto run_once = [&] {
    RandomSampler sampler(7);
    DatasetEvaluator evaluator(space);
    CampaignConfig config = toy_config(space, sampler, evaluator);
    config.rounds = budget_rounds(20, 2);
    return Campaign(config).run();
  };
  const CampaignResult clean = run_once();

  failpoint::ScopedFailpoints armed("dse.campaign.round=nth:1");
  const CampaignResult degraded = run_once();

  ASSERT_EQ(degraded.failures.size(), 1u);
  EXPECT_EQ(degraded.failures[0].name, "campaign round r1");
  EXPECT_EQ(degraded.failures[0].error_type, "NumericalError");
  // The bounded retry re-evaluates the same picks: tables identical.
  EXPECT_EQ(degraded.evaluated, clean.evaluated);
  ASSERT_EQ(degraded.rounds.size(), clean.rounds.size());
  for (std::size_t r = 0; r < clean.rounds.size(); ++r) {
    ASSERT_EQ(degraded.rounds[r].cells.size(), clean.rounds[r].cells.size());
    for (std::size_t c = 0; c < clean.rounds[r].cells.size(); ++c) {
      EXPECT_EQ(degraded.rounds[r].cells[c].predictions,
                clean.rounds[r].cells[c].predictions);
    }
  }
}

TEST(CampaignTest, EveryRoundLostStillReturnsTheFailures) {
  const data::Dataset space = toy_space(40);
  RandomSampler sampler(7);
  DatasetEvaluator evaluator(space);
  CampaignConfig config = toy_config(space, sampler, evaluator);
  config.rounds = budget_rounds(8, 2);

  failpoint::ScopedFailpoints armed("dse.campaign.round=err:StateError");
  const CampaignResult result = Campaign(config).run();
  EXPECT_TRUE(result.rounds.empty());
  EXPECT_EQ(result.final_round(), nullptr);
  EXPECT_EQ(result.failures.size(), 4u);  // 2 rounds x 2 attempts
  EXPECT_EQ(result.failures[0].error_type, "StateError");
  EXPECT_EQ(result.failures[1].name, "campaign round r1 retry");
}

TEST(CampaignTest, AdaptiveBeatsRandomOnTheToySpaceAtEqualBudget) {
  // Not the paper-scale claim (EXPERIMENTS.md pins that on the real sweep);
  // this guards the mechanism — spending the budget where the committee
  // disagrees must not do worse than uniform on a structured space.
  const data::Dataset space = toy_space(200);
  const CampaignResult adaptive = run_adaptive(space);

  RandomSampler sampler(7);
  DatasetEvaluator evaluator(space);
  CampaignConfig config = toy_config(space, sampler, evaluator);
  config.rounds = budget_rounds(30, 1);
  const CampaignResult random = Campaign(config).run();

  const CampaignRound* af = adaptive.final_round();
  const CampaignRound* rf = random.final_round();
  ASSERT_NE(af, nullptr);
  ASSERT_NE(rf, nullptr);
  EXPECT_LE(af->select.true_error, rf->select.true_error * 1.10);
}

}  // namespace
}  // namespace dsml::dse
