#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/error.hpp"

namespace dsml::csv {
namespace {

TEST(CsvParse, HeaderAndRows) {
  const Table t = parse("a,b\n1,2\n3,4\n");
  ASSERT_EQ(t.header.size(), 2u);
  EXPECT_EQ(t.header[0], "a");
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[1][1], "4");
}

TEST(CsvParse, QuotedFieldsWithCommas) {
  const Table t = parse("name,value\n\"x,y\",3\n");
  EXPECT_EQ(t.rows[0][0], "x,y");
}

TEST(CsvParse, EscapedQuotes) {
  const Table t = parse("a\n\"say \"\"hi\"\"\"\n");
  EXPECT_EQ(t.rows[0][0], "say \"hi\"");
}

TEST(CsvParse, ToleratesCrLf) {
  const Table t = parse("a,b\r\n1,2\r\n");
  EXPECT_EQ(t.rows[0][1], "2");
}

TEST(CsvParse, WidthMismatchThrows) {
  EXPECT_THROW(parse("a,b\n1\n"), IoError);
}

TEST(CsvParse, EmptyThrows) {
  EXPECT_THROW(parse(""), IoError);
}

TEST(CsvParse, SkipsBlankLines) {
  const Table t = parse("a\n\n1\n\n2\n");
  EXPECT_EQ(t.rows.size(), 2u);
}

TEST(CsvColumnIndex, FindsAndThrows) {
  const Table t = parse("alpha,beta\n1,2\n");
  EXPECT_EQ(t.column_index("beta"), 1u);
  EXPECT_THROW(t.column_index("gamma"), IoError);
}

TEST(CsvRoundTrip, PlainValues) {
  Table t;
  t.header = {"x", "y"};
  t.rows = {{"1", "hello"}, {"2", "world"}};
  const Table back = parse(to_string(t));
  EXPECT_EQ(back.header, t.header);
  EXPECT_EQ(back.rows, t.rows);
}

TEST(CsvRoundTrip, ValuesNeedingQuotes) {
  Table t;
  t.header = {"a"};
  t.rows = {{"with,comma"}, {"with\"quote"}};
  const Table back = parse(to_string(t));
  EXPECT_EQ(back.rows, t.rows);
}

// Regression: to_string quotes fields containing '\n', but the old
// line-oriented parser threw on the quoted multi-line field it had just
// written. Embedded newlines must round-trip.
TEST(CsvRoundTrip, EmbeddedNewlines) {
  Table t;
  t.header = {"name", "note"};
  t.rows = {{"multi", "line one\nline two"}, {"plain", "x"}};
  const Table back = parse(to_string(t));
  EXPECT_EQ(back.header, t.header);
  EXPECT_EQ(back.rows, t.rows);
}

// '\r' inside a quoted field is data, not line-ending noise, and must
// survive a write→parse round trip byte for byte.
TEST(CsvRoundTrip, CarriageReturnInsideQuotesPreserved) {
  Table t;
  t.header = {"v"};
  t.rows = {{"a\rb"}, {"c\r\nd"}};
  const Table back = parse(to_string(t));
  EXPECT_EQ(back.rows, t.rows);
}

TEST(CsvParse, QuotedEmbeddedNewlineDirect) {
  const Table t = parse("a,b\n\"1\n2\",3\n");
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0][0], "1\n2");
  EXPECT_EQ(t.rows[0][1], "3");
}

TEST(CsvParse, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse("a\n\"unclosed\n"), IoError);
}

TEST(CsvParse, LastRecordWithoutTrailingNewline) {
  const Table t = parse("a,b\n1,2");
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0][1], "2");
}

TEST(CsvFile, WriteCreatesDirectoriesAndReadsBack) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "dsml_csv_test").string();
  std::filesystem::remove_all(dir);
  const std::string path = dir + "/nested/file.csv";
  Table t;
  t.header = {"k", "v"};
  t.rows = {{"key", "value"}};
  write_file(path, t);
  const Table back = read_file(path);
  EXPECT_EQ(back.rows[0][1], "value");
  std::filesystem::remove_all(dir);
}

TEST(CsvFile, MissingFileThrows) {
  EXPECT_THROW(read_file("/nonexistent/definitely/missing.csv"), IoError);
}

}  // namespace
}  // namespace dsml::csv
