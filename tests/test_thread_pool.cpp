#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace dsml {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&] { ++counter; }));
  }
  for (auto& f : futures) f.wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, RespectsRange) {
  std::vector<std::atomic<int>> hits(100);
  parallel_for(10, 20, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 10 && i < 20) ? 1 : 0);
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, PropagatesException) {
  EXPECT_THROW(
      parallel_for(0, 100,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, ComputesCorrectSum) {
  std::vector<double> values(10000);
  parallel_for(0, values.size(), [&](std::size_t i) {
    values[i] = static_cast<double>(i);
  });
  const double sum = std::accumulate(values.begin(), values.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 10000.0 * 9999.0 / 2.0);
}

TEST(ParallelFor, CustomGrain) {
  std::vector<std::atomic<int>> hits(64);
  parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; }, 7);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ExplicitPoolOverload) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(500);
  parallel_for(pool, 0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, HonoursDsmlThreadsEnv) {
  ASSERT_EQ(setenv("DSML_THREADS", "3", /*overwrite=*/1), 0);
  ThreadPool pool(0);
  unsetenv("DSML_THREADS");
  EXPECT_EQ(pool.size(), 3u);
}

// --- Stress tests (run under the tsan ctest label) -------------------------

TEST(ThreadPoolStress, ManyShortTasksFromConcurrentSubmitters) {
  ThreadPool pool(4);
  constexpr int kSubmitters = 8;
  constexpr int kTasksEach = 250;
  std::atomic<int> executed{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      std::vector<std::future<void>> futures;
      futures.reserve(kTasksEach);
      for (int i = 0; i < kTasksEach; ++i) {
        futures.push_back(pool.submit([&] {
          executed.fetch_add(1, std::memory_order_relaxed);
        }));
      }
      for (auto& f : futures) f.wait();
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(executed.load(), kSubmitters * kTasksEach);
}

TEST(ThreadPoolStress, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(4);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] {
      if (i % 3 == 0) throw std::runtime_error("task failure");
    }));
  }
  int failures = 0;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (const std::runtime_error&) {
      ++failures;
    }
  }
  EXPECT_EQ(failures, 34);  // i = 0, 3, ..., 99
}

TEST(ThreadPoolStress, ConcurrentParallelForCallers) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> a(2000);
  std::vector<std::atomic<int>> b(2000);
  std::thread ta([&] {
    parallel_for(pool, 0, a.size(), [&](std::size_t i) { ++a[i]; });
  });
  std::thread tb([&] {
    parallel_for(pool, 0, b.size(), [&](std::size_t i) { ++b[i]; });
  });
  ta.join();
  tb.join();
  for (const auto& h : a) EXPECT_EQ(h.load(), 1);
  for (const auto& h : b) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolStress, NestedParallelForCompletesInline) {
  // Nested calls must degrade to inline loops instead of deadlocking a
  // fully occupied pool.
  ThreadPool pool(2);
  std::atomic<int> leaf{0};
  parallel_for(pool, 0, 8, [&](std::size_t) {
    parallel_for(pool, 0, 8, [&](std::size_t) {
      leaf.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(leaf.load(), 64);
}

TEST(ThreadPoolStress, ExceptionInOneChunkDoesNotBlockOthers) {
  ThreadPool pool(4);
  std::atomic<int> visited{0};
  EXPECT_THROW(
      parallel_for(pool, 0, 1000,
                   [&](std::size_t i) {
                     visited.fetch_add(1, std::memory_order_relaxed);
                     if (i == 500) throw std::logic_error("mid-loop");
                   }),
      std::logic_error);
  EXPECT_GT(visited.load(), 0);
}

}  // namespace
}  // namespace dsml
