#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace dsml {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&] { ++counter; }));
  }
  for (auto& f : futures) f.wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, RespectsRange) {
  std::vector<std::atomic<int>> hits(100);
  parallel_for(10, 20, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 10 && i < 20) ? 1 : 0);
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, PropagatesException) {
  EXPECT_THROW(
      parallel_for(0, 100,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, ComputesCorrectSum) {
  std::vector<double> values(10000);
  parallel_for(0, values.size(), [&](std::size_t i) {
    values[i] = static_cast<double>(i);
  });
  const double sum = std::accumulate(values.begin(), values.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 10000.0 * 9999.0 / 2.0);
}

TEST(ParallelFor, CustomGrain) {
  std::vector<std::atomic<int>> hits(64);
  parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; }, 7);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace dsml
