#include "ml/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace dsml::ml {
namespace {

TEST(Ape, KnownValues) {
  const std::vector<double> pred = {110.0, 90.0};
  const std::vector<double> truth = {100.0, 100.0};
  const auto errors = absolute_percentage_errors(pred, truth);
  EXPECT_DOUBLE_EQ(errors[0], 10.0);
  EXPECT_DOUBLE_EQ(errors[1], 10.0);
}

TEST(Ape, PerfectPrediction) {
  const std::vector<double> v = {5.0, 7.0};
  EXPECT_DOUBLE_EQ(mape(v, v), 0.0);
}

TEST(Ape, NonPositiveTruthThrows) {
  const std::vector<double> pred = {1.0};
  const std::vector<double> truth = {0.0};
  EXPECT_THROW(absolute_percentage_errors(pred, truth), InvalidArgument);
}

TEST(Ape, SizeMismatchThrows) {
  const std::vector<double> pred = {1.0, 2.0};
  const std::vector<double> truth = {1.0};
  EXPECT_THROW(mape(pred, truth), InvalidArgument);
}

TEST(Mape, Average) {
  const std::vector<double> pred = {120.0, 100.0};
  const std::vector<double> truth = {100.0, 100.0};
  EXPECT_DOUBLE_EQ(mape(pred, truth), 10.0);
}

TEST(ErrorSummary, Fields) {
  const std::vector<double> pred = {110.0, 100.0, 80.0};
  const std::vector<double> truth = {100.0, 100.0, 100.0};
  const ErrorSummary s = summarize_errors(pred, truth);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 10.0);
  EXPECT_DOUBLE_EQ(s.max, 20.0);
  EXPECT_NEAR(s.stddev, 10.0, 1e-12);
}

TEST(ErrorSummary, SingleRecordZeroStddev) {
  const std::vector<double> pred = {90.0};
  const std::vector<double> truth = {100.0};
  const ErrorSummary s = summarize_errors(pred, truth);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Rmse, KnownValue) {
  const std::vector<double> pred = {1.0, 2.0};
  const std::vector<double> truth = {0.0, 0.0};
  EXPECT_NEAR(rmse(pred, truth), std::sqrt(2.5), 1e-12);
}

TEST(RSquared, PerfectFit) {
  const std::vector<double> truth = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r_squared(truth, truth), 1.0);
}

TEST(RSquared, MeanPredictionIsZero) {
  const std::vector<double> truth = {1.0, 2.0, 3.0};
  const std::vector<double> pred = {2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(r_squared(pred, truth), 0.0);
}

TEST(RSquared, WorseThanMeanIsNegative) {
  const std::vector<double> truth = {1.0, 2.0, 3.0};
  const std::vector<double> pred = {3.0, 2.0, 1.0};
  EXPECT_LT(r_squared(pred, truth), 0.0);
}

}  // namespace
}  // namespace dsml::ml
