// Fault-injection suite (ctest -L fault): failpoint spec parsing and trigger
// semantics, the bounded-retry policy, graceful degradation in the
// cross-validation / Select / dse layers, crash-safe artifact writes, and the
// bit-identity contract (arming an unmatched failpoint must not perturb any
// model output). Runs under the tsan label too: hits fire from pool workers.
#include "common/failpoint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli.hpp"
#include "common/atomic_io.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/retry.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "data/column.hpp"
#include "data/dataset.hpp"
#include "ml/linreg.hpp"
#include "ml/metrics.hpp"
#include "ml/nn_models.hpp"
#include "ml/serialize.hpp"
#include "ml/validation.hpp"

namespace dsml {
namespace {

namespace fs = std::filesystem;

data::Dataset make_linear_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x1(n);
  std::vector<double> x2(n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x1[i] = rng.uniform(0.0, 10.0);
    x2[i] = rng.uniform(0.0, 10.0);
    y[i] = 50.0 + 3.0 * x1[i] + 1.0 * x2[i] + rng.gaussian(0.0, 0.5);
  }
  data::Dataset ds;
  ds.add_feature(data::Column::numeric("x1", std::move(x1)));
  ds.add_feature(data::Column::numeric("x2", std::move(x2)));
  ds.set_target("y", std::move(y));
  return ds;
}

ml::ModelFactory lr_factory() {
  return []() -> std::unique_ptr<ml::Regressor> {
    return std::make_unique<ml::LinearRegression>();
  };
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Every test leaves the process disarmed, whatever path it exits through.
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::clear(); }
};

// --- Spec parsing and trigger semantics -------------------------------------

TEST_F(FailpointTest, DisabledByDefaultAndFreeToHit) {
  EXPECT_FALSE(failpoint::enabled());
  EXPECT_NO_THROW(DSML_FAIL("not.armed"));
  EXPECT_FALSE(DSML_FAIL_POISON("not.armed"));
  EXPECT_EQ(failpoint::hits("not.armed"), 0u);
}

TEST_F(FailpointTest, ConfigureArmsInSpecOrderAndClearDisarms) {
  failpoint::configure("b.second=err:IoError, a.first=nth:4");
  EXPECT_TRUE(failpoint::enabled());
  EXPECT_EQ(failpoint::armed(),
            (std::vector<std::string>{"b.second", "a.first"}));
  failpoint::clear();
  EXPECT_FALSE(failpoint::enabled());
  EXPECT_TRUE(failpoint::armed().empty());
}

TEST_F(FailpointTest, MalformedSpecThrowsAndKeepsPreviousConfig) {
  failpoint::configure("keep.me=nth:5");
  for (const char* bad :
       {"nonsense", "=nth:1", "a=", "a=nth:0", "a=nth:x", "a=nth:",
        "a=prob:0.5", "a=prob:1.5@1", "a=prob:x@1", "a=prob:0.5@",
        "a=err:Bogus", "a=nth:1,a=nth:2"}) {
    EXPECT_THROW(failpoint::configure(bad), InvalidArgument) << bad;
  }
  // The previous configuration survived every failed reconfigure.
  EXPECT_EQ(failpoint::armed(), (std::vector<std::string>{"keep.me"}));
  EXPECT_TRUE(failpoint::enabled());
}

TEST_F(FailpointTest, NthTriggerFiresExactlyOnTheNthHit) {
  failpoint::configure("p=nth:3");
  const std::uint64_t fires_before =
      metrics::counter("failpoint.p.fires").value();
  for (int i = 1; i <= 5; ++i) {
    if (i == 3) {
      EXPECT_THROW(DSML_FAIL("p"), NumericalError) << "hit " << i;
    } else {
      EXPECT_NO_THROW(DSML_FAIL("p")) << "hit " << i;
    }
  }
  EXPECT_EQ(failpoint::hits("p"), 5u);
  EXPECT_EQ(metrics::counter("failpoint.p.fires").value(), fires_before + 1);
}

TEST_F(FailpointTest, ErrTriggerThrowsTheNamedTaxonomyType) {
  failpoint::configure("io=err:IoError,train=err:TrainingError");
  EXPECT_THROW(DSML_FAIL("io"), IoError);
  EXPECT_THROW(DSML_FAIL("io"), IoError);  // every hit, not just the first
  try {
    DSML_FAIL("train");
    FAIL() << "expected TrainingError";
  } catch (const TrainingError& e) {
    EXPECT_EQ(e.model(), "failpoint");
    EXPECT_EQ(error_kind(e), "TrainingError");
  }
}

TEST_F(FailpointTest, ProbTriggerIsDeterministicInSeedAndHitIndex) {
  const auto pattern = [](const std::string& spec) {
    failpoint::configure(spec);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(DSML_FAIL_POISON("p"));
    return fired;
  };
  const std::vector<bool> a = pattern("p=prob:0.5@42");
  const std::vector<bool> b = pattern("p=prob:0.5@42");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, pattern("p=prob:0.5@43"));  // seed matters
  // Degenerate probabilities behave as advertised.
  const std::vector<bool> never = pattern("p=prob:0@1");
  EXPECT_EQ(std::count(never.begin(), never.end(), true), 0);
  const std::vector<bool> always = pattern("p=prob:1@1");
  EXPECT_EQ(std::count(always.begin(), always.end(), true), 64);
}

TEST_F(FailpointTest, PoisonFormReportsFiresWithoutThrowing) {
  failpoint::configure("p=err:NumericalError");
  bool fired = false;
  EXPECT_NO_THROW(fired = DSML_FAIL_POISON("p"));
  EXPECT_TRUE(fired);
}

TEST_F(FailpointTest, ScopedFailpointsRestoresThePreviousSpec) {
  failpoint::configure("outer=nth:9");
  {
    failpoint::ScopedFailpoints inner("inner=err:IoError");
    EXPECT_EQ(failpoint::armed(), (std::vector<std::string>{"inner"}));
  }
  EXPECT_EQ(failpoint::armed(), (std::vector<std::string>{"outer"}));
  {
    failpoint::ScopedFailpoints disarm("");
    EXPECT_FALSE(failpoint::enabled());
  }
  EXPECT_EQ(failpoint::armed(), (std::vector<std::string>{"outer"}));
}

TEST_F(FailpointTest, ConcurrentHitsFromPoolWorkersAreClean) {
  // TSan pins this: pool workers hammer one armed point and one unarmed name
  // concurrently; the accounting must neither race nor lose hits.
  failpoint::configure("pool.hammer=prob:0.5@7");
  std::atomic<std::size_t> fired{0};
  parallel_for(0, 1000, [&](std::size_t) {
    try {
      DSML_FAIL("pool.hammer");
      DSML_FAIL("pool.unarmed");
    } catch (const NumericalError&) {
      fired.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(failpoint::hits("pool.hammer"), 1000u);
  EXPECT_GT(fired.load(), 0u);
  EXPECT_LT(fired.load(), 1000u);
}

// --- retry() policy ---------------------------------------------------------

TEST_F(FailpointTest, RetryFirstAttemptNeverReseeds) {
  int reseeds = 0;
  int calls = 0;
  const int got = retry(
      3, [&](std::size_t) { ++reseeds; },
      [&](std::size_t attempt) {
        ++calls;
        EXPECT_EQ(attempt, 0u);
        return 17;
      });
  EXPECT_EQ(got, 17);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(reseeds, 0);
}

TEST_F(FailpointTest, RetryRecoversFromRecoverableErrors) {
  const std::uint64_t recovered_before =
      metrics::counter("retry.recovered").value();
  std::vector<std::size_t> reseeded;
  const int got = retry(
      3, [&](std::size_t attempt) { reseeded.push_back(attempt); },
      [&](std::size_t attempt) -> int {
        if (attempt == 0) throw NumericalError("diverged");
        if (attempt == 1) throw TrainingError("NN", "epoch 3", "diverged");
        return 7;
      });
  EXPECT_EQ(got, 7);
  EXPECT_EQ(reseeded, (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(metrics::counter("retry.recovered").value(), recovered_before + 1);
}

TEST_F(FailpointTest, RetryPropagatesNonRecoverableImmediately) {
  int calls = 0;
  EXPECT_THROW(retry(
                   3, [](std::size_t) {},
                   [&](std::size_t) -> int {
                     ++calls;
                     throw InvalidArgument("bad input");
                   }),
               InvalidArgument);
  EXPECT_EQ(calls, 1);
}

TEST_F(FailpointTest, RetryExhaustionRethrowsTheLastError) {
  const std::uint64_t exhausted_before =
      metrics::counter("retry.exhausted").value();
  int calls = 0;
  EXPECT_THROW(retry(
                   3, [](std::size_t) {},
                   [&](std::size_t) -> int {
                     ++calls;
                     throw NumericalError("still singular");
                   }),
               NumericalError);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(metrics::counter("retry.exhausted").value(), exhausted_before + 1);
}

TEST_F(FailpointTest, RetrySupportsVoidOperations) {
  int calls = 0;
  EXPECT_NO_THROW(retry(
      2, [](std::size_t) {},
      [&](std::size_t attempt) {
        ++calls;
        if (attempt == 0) throw NumericalError("once");
      }));
  EXPECT_EQ(calls, 2);
}

// --- Graceful degradation: cross-validation and Select ----------------------

TEST_F(FailpointTest, EstimateErrorToleratesAMinorityOfFoldFailures) {
  const data::Dataset ds = make_linear_data(60, 11);
  ml::ValidationOptions opt;
  opt.repeats = 5;
  failpoint::configure("estimate_error.fold=nth:2");
  const ml::ErrorEstimate est = ml::estimate_error(lr_factory(), ds, opt);
  EXPECT_EQ(est.folds.size(), 4u);
  ASSERT_EQ(est.failed.size(), 1u);
  EXPECT_EQ(est.failed[0].error_type, "NumericalError");
  EXPECT_NE(est.failed[0].message.find("estimate_error.fold"),
            std::string::npos);
  EXPECT_TRUE(std::isfinite(est.average));
  EXPECT_TRUE(std::isfinite(est.maximum));
}

TEST_F(FailpointTest, EstimateErrorThrowsWhenMostFoldsFail) {
  const data::Dataset ds = make_linear_data(60, 12);
  failpoint::configure("estimate_error.fold=err:NumericalError");
  EXPECT_THROW(ml::estimate_error(lr_factory(), ds), TrainingError);
}

TEST_F(FailpointTest, ArmedButUnmatchedFailpointIsBitIdentical) {
  // The overhead contract: arming the layer must not perturb any model
  // output until a trigger actually fires, because hits never consume
  // library RNG. Pinned by exact fold-for-fold equality.
  const data::Dataset ds = make_linear_data(90, 13);
  ml::ValidationOptions opt;
  opt.repeats = 7;
  failpoint::clear();
  const ml::ErrorEstimate clean = ml::estimate_error(lr_factory(), ds, opt);
  failpoint::configure("no.such.site=err:IoError,other=prob:0.9@1");
  const ml::ErrorEstimate armed = ml::estimate_error(lr_factory(), ds, opt);
  EXPECT_EQ(clean.folds, armed.folds);
  EXPECT_EQ(clean.average, armed.average);
  EXPECT_EQ(clean.maximum, armed.maximum);
  EXPECT_TRUE(armed.failed.empty());
}

TEST_F(FailpointTest, SelectModelConvergesDespiteAFoldFailure) {
  // The ISSUE acceptance scenario: with estimate_error.fold=nth:2 armed,
  // SelectModel::fit still converges and failures() names the fold failure.
  const data::Dataset train = make_linear_data(80, 14);
  std::vector<ml::NamedModel> candidates;
  candidates.push_back({"LR-B", lr_factory()});
  ml::SelectModel select(std::move(candidates));
  failpoint::configure("estimate_error.fold=nth:2");
  select.fit(train);
  EXPECT_TRUE(select.fitted());
  EXPECT_EQ(select.chosen_name(), "LR-B");
  ASSERT_EQ(select.failures().size(), 1u);
  EXPECT_NE(select.failures()[0].name.find("LR-B fold"), std::string::npos);
  EXPECT_EQ(select.failures()[0].error_type, "NumericalError");
}

TEST_F(FailpointTest, SelectModelSkipsACandidateWhoseEstimateFails) {
  const data::Dataset train = make_linear_data(80, 15);
  std::vector<ml::NamedModel> candidates;
  candidates.push_back({"LR-1", lr_factory()});
  candidates.push_back({"LR-2", lr_factory()});
  ml::SelectModel select(std::move(candidates));
  // Candidate estimates run concurrently, so nth:1 kills whichever candidate
  // hits first; either way exactly one survives and is chosen.
  failpoint::configure("select.candidate=nth:1");
  select.fit(train);
  EXPECT_TRUE(select.fitted());
  ASSERT_EQ(select.estimates().size(), 2u);
  const std::size_t failed =
      std::isinf(select.estimates()[0].maximum) ? 0u : 1u;
  EXPECT_TRUE(std::isinf(select.estimates()[failed].maximum));
  EXPECT_TRUE(std::isfinite(select.estimates()[1 - failed].maximum));
  ASSERT_EQ(select.failures().size(), 1u);
  EXPECT_EQ(select.chosen_name(), failed == 0 ? "LR-2" : "LR-1");
}

TEST_F(FailpointTest, SelectModelThrowsOnlyWhenEveryCandidateFails) {
  const data::Dataset train = make_linear_data(80, 16);
  std::vector<ml::NamedModel> candidates;
  candidates.push_back({"LR-1", lr_factory()});
  candidates.push_back({"LR-2", lr_factory()});
  ml::SelectModel select(std::move(candidates));
  failpoint::configure("select.candidate=err:NumericalError");
  EXPECT_THROW(select.fit(train), TrainingError);
  EXPECT_FALSE(select.fitted());
  EXPECT_EQ(select.failures().size(), 2u);
}

TEST_F(FailpointTest, SelectModelFallsBackWhenTheFinalFitFails) {
  const data::Dataset train = make_linear_data(80, 17);
  std::vector<ml::NamedModel> candidates;
  candidates.push_back({"LR-1", lr_factory()});
  candidates.push_back({"LR-2", lr_factory()});
  ml::SelectModel select(std::move(candidates));
  // Estimates are identical factories; the winner's final fit fails once, so
  // Select must fall through to the runner-up instead of dying.
  failpoint::configure("select.final_fit=nth:1");
  select.fit(train);
  EXPECT_TRUE(select.fitted());
  ASSERT_EQ(select.failures().size(), 1u);
  EXPECT_NE(select.failures()[0].name.find("final fit"), std::string::npos);
  const data::Dataset test = make_linear_data(30, 18);
  EXPECT_LT(ml::mape(select.predict(test), test.target()), 5.0);
}

// --- Recovery paths inside the models themselves ----------------------------

TEST_F(FailpointTest, LinearRegressionFallsBackToRidgeWhenTheSolveFails) {
  const data::Dataset train = make_linear_data(60, 19);
  failpoint::configure("linreg.solve=err:NumericalError");
  const std::uint64_t ridge_before =
      metrics::counter("ml.linreg_ridge_solves").value();
  ml::LinearRegression model;
  model.fit(train);  // attempt 0 is killed; the ridge retry must succeed
  EXPECT_TRUE(model.fitted());
  EXPECT_TRUE(model.ols().ridge_fallback);
  EXPECT_GT(metrics::counter("ml.linreg_ridge_solves").value(), ridge_before);
  const data::Dataset test = make_linear_data(20, 20);
  for (double p : model.predict(test)) EXPECT_TRUE(std::isfinite(p));
  // The ridge solution of a well-conditioned system is still accurate.
  EXPECT_LT(ml::mape(model.predict(test), test.target()), 5.0);
}

TEST_F(FailpointTest, NeuralTrainingRetriesAfterAPoisonedLoss) {
  const data::Dataset train = make_linear_data(50, 21);
  failpoint::configure("nn.nonfinite_loss=nth:1");
  const std::uint64_t attempts_before =
      metrics::counter("retry.attempts").value();
  ml::NeuralRegressor::Options opt;
  opt.method = ml::NnMethod::kQuick;
  opt.epoch_scale = 0.05;
  ml::NeuralRegressor model(opt);
  model.fit(train);  // first attempt diverges, the reseeded retry lands
  EXPECT_TRUE(model.fitted());
  EXPECT_GT(metrics::counter("retry.attempts").value(), attempts_before);
  for (double p : model.predict(train)) EXPECT_TRUE(std::isfinite(p));
}

// --- Crash-safe artifact writes ---------------------------------------------

TEST_F(FailpointTest, FailedAtomicWriteLeavesTheOldArtifactIntact) {
  const fs::path path =
      fs::temp_directory_path() / "dsml_fault_atomic.txt";
  const fs::path tmp = path.string() + ".tmp";
  io::write_file_atomic(path, "original contents\n");
  failpoint::configure("atomic_io.write=err:IoError");
  EXPECT_THROW(io::write_file_atomic(path, "half-written"), IoError);
  EXPECT_EQ(read_file(path), "original contents\n");
  EXPECT_FALSE(fs::exists(tmp));  // the temp file was cleaned up
  failpoint::clear();
  io::write_file_atomic(path, "replaced\n");
  EXPECT_EQ(read_file(path), "replaced\n");
  fs::remove(path);
}

TEST_F(FailpointTest, FailedModelSaveLeavesTheOldModelLoadable) {
  const fs::path path =
      fs::temp_directory_path() / "dsml_fault_model.dsml";
  const data::Dataset train = make_linear_data(40, 22);
  ml::LinearRegression model;
  model.fit(train);
  ml::save_model(model, path.string());
  const std::string original = read_file(path);
  failpoint::configure("serialize.save=err:IoError");
  EXPECT_THROW(ml::save_model(model, path.string()), IoError);
  EXPECT_EQ(read_file(path), original);
  EXPECT_FALSE(fs::exists(path.string() + ".tmp"));
  failpoint::clear();
  EXPECT_NO_THROW(ml::load_model(path.string()));
  fs::remove(path);
}

// --- End-to-end: the CLI survives injected failures -------------------------

class FaultCliTest : public FailpointTest {
 protected:
  void SetUp() override {
    cache_dir_ =
        (fs::temp_directory_path() / "dsml_fault_cli_cache").string();
    ::setenv("DSML_CACHE_DIR", cache_dir_.c_str(), 1);
  }
  void TearDown() override {
    ::unsetenv("DSML_CACHE_DIR");
    fs::remove_all(cache_dir_);
    FailpointTest::TearDown();
  }
  struct CliResult {
    int exit_code;
    std::string out;
    std::string err;
  };
  static CliResult run_cli(std::vector<std::string> args) {
    std::ostringstream out;
    std::ostringstream err;
    const int code = cli::run(args, out, err);
    return {code, out.str(), err.str()};
  }
  std::string cache_dir_;
};

TEST_F(FaultCliTest, SampledExperimentSurvivesAnInjectedEvalFailure) {
  // One of the two model evaluations is killed; the run must complete,
  // print the surviving row, and summarise the tolerated failure.
  const auto result = run_cli({"--failpoints", "dse.sampled.eval=nth:1",
                               "sampled", "--app", "applu", "--rates", "0.02",
                               "--models", "LR-B,LR-S", "--full", "40000",
                               "--interval", "4000", "--clusters", "2"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("1 failure(s) tolerated"), std::string::npos)
      << result.out;
  EXPECT_NE(result.out.find("NumericalError"), std::string::npos);
  // The scoped arming did not leak past the command.
  EXPECT_FALSE(failpoint::enabled());
}

TEST_F(FaultCliTest, ChronoExperimentSurvivesAnInjectedEvalFailure) {
  const auto result =
      run_cli({"--failpoints", "dse.chrono.eval=nth:1", "chrono", "--family",
               "pd", "--models", "LR-E,LR-S"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("1 failure(s) tolerated"), std::string::npos)
      << result.out;
  EXPECT_NE(result.out.find("best:"), std::string::npos);
}

}  // namespace
}  // namespace dsml
