#include "ml/mlp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace dsml::ml {
namespace {

linalg::Matrix toy_inputs(std::size_t n, Rng& rng) {
  linalg::Matrix x(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform();
    x(i, 1) = rng.uniform();
  }
  return x;
}

std::vector<double> toy_targets(const linalg::Matrix& x) {
  std::vector<double> y(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    // Mildly nonlinear, range ~[0,1].
    y[i] = 0.3 * x(i, 0) + 0.4 * x(i, 1) * x(i, 1) + 0.1;
  }
  return y;
}

TEST(Mlp, ConstructionShape) {
  Rng rng(1);
  Mlp net(3, {5, 4}, rng);
  EXPECT_EQ(net.n_inputs(), 3u);
  ASSERT_EQ(net.hidden_sizes().size(), 2u);
  EXPECT_EQ(net.hidden_sizes()[0], 5u);
  EXPECT_EQ(net.hidden_sizes()[1], 4u);
  // Weights: 3*5+5 + 5*4+4 + 4*1+1 = 49.
  EXPECT_EQ(net.parameter_count(), 49u);
}

TEST(Mlp, DeterministicFromSeed) {
  Rng a(7);
  Rng b(7);
  Mlp na(2, {4}, a);
  Mlp nb(2, {4}, b);
  const std::vector<double> x = {0.3, 0.8};
  EXPECT_DOUBLE_EQ(na.predict(x), nb.predict(x));
}

TEST(Mlp, PredictInputSizeChecked) {
  Rng rng(2);
  Mlp net(3, {2}, rng);
  const std::vector<double> bad = {1.0, 2.0};
  EXPECT_THROW(net.predict(bad), InvalidArgument);
}

TEST(Mlp, NoHiddenLayerIsLinearModel) {
  Rng rng(3);
  Mlp net(2, {}, rng);
  // Output must be an affine function of inputs: check superposition.
  const std::vector<double> zero = {0.0, 0.0};
  const std::vector<double> e1 = {1.0, 0.0};
  const std::vector<double> e2 = {0.0, 1.0};
  const std::vector<double> both = {1.0, 1.0};
  const double b = net.predict(zero);
  EXPECT_NEAR(net.predict(both) - b,
              (net.predict(e1) - b) + (net.predict(e2) - b), 1e-12);
}

TEST(Mlp, TrainingReducesError) {
  Rng rng(4);
  const linalg::Matrix x = toy_inputs(64, rng);
  const std::vector<double> y = toy_targets(x);
  Mlp net(2, {6}, rng);
  const double before = net.mse(x, y);
  for (int epoch = 0; epoch < 200; ++epoch) {
    net.train_epoch(x, y, 0.2, 0.9, rng);
  }
  const double after = net.mse(x, y);
  EXPECT_LT(after, before * 0.2);
  EXPECT_LT(after, 0.01);
}

TEST(Mlp, BatchPredictionMatchesSingle) {
  Rng rng(5);
  const linalg::Matrix x = toy_inputs(8, rng);
  Mlp net(2, {3}, rng);
  const auto batch = net.predict(x);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], net.predict(x.row(i)));
  }
}

TEST(Mlp, RemoveHiddenUnitShrinksLayer) {
  Rng rng(6);
  Mlp net(2, {5}, rng);
  const std::size_t params_before = net.parameter_count();
  net.remove_hidden_unit(0, 2);
  EXPECT_EQ(net.hidden_sizes()[0], 4u);
  // Removed: 2 incoming weights + 1 bias + 1 outgoing weight = 4.
  EXPECT_EQ(net.parameter_count(), params_before - 4);
  const std::vector<double> x = {0.5, 0.5};
  EXPECT_TRUE(std::isfinite(net.predict(x)));
}

TEST(Mlp, RemoveLastUnitThrows) {
  Rng rng(7);
  Mlp net(2, {1}, rng);
  EXPECT_THROW(net.remove_hidden_unit(0, 0), InvalidArgument);
}

TEST(Mlp, AddHiddenUnitPreservesExistingBehaviourApproximately) {
  Rng rng(8);
  Mlp net(2, {3}, rng);
  const std::vector<double> x = {0.4, 0.6};
  const double before = net.predict(x);
  net.add_hidden_unit(0, rng);
  EXPECT_EQ(net.hidden_sizes()[0], 4u);
  // The new unit has small random outgoing weights, so the output moves
  // a bounded amount, not wildly.
  EXPECT_NEAR(net.predict(x), before, 1.0);
}

TEST(Mlp, DisableInputRemovesItsEffect) {
  Rng rng(9);
  Mlp net(2, {4}, rng);
  net.disable_input(1);
  EXPECT_FALSE(net.input_enabled(1));
  EXPECT_TRUE(net.input_enabled(0));
  EXPECT_EQ(net.enabled_input_count(), 1u);
  const std::vector<double> a = {0.5, 0.1};
  const std::vector<double> b = {0.5, 0.9};
  EXPECT_DOUBLE_EQ(net.predict(a), net.predict(b));
}

TEST(Mlp, DisabledInputStaysZeroThroughTraining) {
  Rng rng(10);
  const linalg::Matrix x = toy_inputs(32, rng);
  const std::vector<double> y = toy_targets(x);
  Mlp net(2, {4}, rng);
  net.disable_input(0);
  for (int epoch = 0; epoch < 50; ++epoch) {
    net.train_epoch(x, y, 0.2, 0.9, rng);
  }
  const std::vector<double> a = {0.0, 0.5};
  const std::vector<double> b = {1.0, 0.5};
  EXPECT_DOUBLE_EQ(net.predict(a), net.predict(b));
}

TEST(Mlp, SaliencyNonNegative) {
  Rng rng(11);
  Mlp net(3, {4}, rng);
  for (std::size_t u = 0; u < 4; ++u) {
    EXPECT_GE(net.hidden_unit_saliency(0, u), 0.0);
  }
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GE(net.input_saliency(i), 0.0);
  }
  net.disable_input(2);
  EXPECT_DOUBLE_EQ(net.input_saliency(2), 0.0);
}

TEST(Mlp, PruneSmallestWeightsReducesParameters) {
  Rng rng(12);
  Mlp net(4, {8}, rng);
  const std::size_t before = net.parameter_count();
  net.prune_smallest_weights(0.25);
  EXPECT_LT(net.parameter_count(), before);
  // Biases are exempt, weights only: 4*8 + 8*1 = 40 weights, 25% = 10 frozen.
  EXPECT_EQ(net.parameter_count(), before - 10);
}

TEST(Mlp, PruneZeroFractionNoop) {
  Rng rng(13);
  Mlp net(2, {4}, rng);
  const std::size_t before = net.parameter_count();
  net.prune_smallest_weights(0.0);
  EXPECT_EQ(net.parameter_count(), before);
}

TEST(Mlp, PrunedWeightsStayFrozenDuringTraining) {
  Rng rng(14);
  const linalg::Matrix x = toy_inputs(32, rng);
  const std::vector<double> y = toy_targets(x);
  Mlp net(2, {4}, rng);
  net.prune_smallest_weights(0.5);
  const std::size_t frozen_params = net.parameter_count();
  for (int epoch = 0; epoch < 20; ++epoch) {
    net.train_epoch(x, y, 0.2, 0.9, rng);
  }
  EXPECT_EQ(net.parameter_count(), frozen_params);
}

TEST(Mlp, TrainEpochReturnsMse) {
  Rng rng(15);
  const linalg::Matrix x = toy_inputs(16, rng);
  const std::vector<double> y = toy_targets(x);
  Mlp net(2, {3}, rng);
  const double mse = net.train_epoch(x, y, 0.1, 0.9, rng);
  EXPECT_GT(mse, 0.0);
  EXPECT_TRUE(std::isfinite(mse));
}

TEST(Mlp, ZeroWidthHiddenLayerThrows) {
  Rng rng(16);
  EXPECT_THROW(Mlp(2, {0}, rng), InvalidArgument);
}

}  // namespace
}  // namespace dsml::ml
