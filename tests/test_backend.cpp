// Pins the runtime kernel-dispatch contract (linalg/backend.hpp): every
// backend produces bit-identical double results over shapes that exercise
// full vector lanes AND scalar remainders, the selection priority order
// (override > DSML_BACKEND > cpuid) holds, and the float32 serving path
// stays inside its 1e-5 relative error budget on Table-3-shaped models.
#include "linalg/backend.hpp"

#include <gtest/gtest.h>
#include <stdlib.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"
#include "ml/f32.hpp"
#include "ml/linreg.hpp"
#include "ml/model_zoo.hpp"
#include "sim/config.hpp"

namespace dsml::linalg {
namespace {

constexpr Backend kAll[] = {Backend::kNaive, Backend::kBlocked,
                            Backend::kSimd};

bool same_bits(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

// --- Name round-trips and parse errors -------------------------------------

TEST(Backend, ToStringParseRoundTrip) {
  for (Backend b : kAll) {
    EXPECT_EQ(parse_backend(to_string(b)), b);
  }
  EXPECT_STREQ(to_string(Backend::kNaive), "naive");
  EXPECT_STREQ(to_string(Backend::kBlocked), "blocked");
  EXPECT_STREQ(to_string(Backend::kSimd), "simd");
}

TEST(Backend, ParseRejectsUnknownNames) {
  EXPECT_THROW(parse_backend(""), InvalidArgument);
  EXPECT_THROW(parse_backend("avx2"), InvalidArgument);
  EXPECT_THROW(parse_backend("SIMD"), InvalidArgument);
  EXPECT_THROW(parse_backend("blocked "), InvalidArgument);
}

// --- Selection priority ----------------------------------------------------

TEST(Backend, ScopedOverrideAppliesAndRestores) {
  const Backend before = active_backend();
  {
    ScopedBackend pin(Backend::kNaive);
    EXPECT_EQ(active_backend(), Backend::kNaive);
    {
      ScopedBackend inner(Backend::kBlocked);
      EXPECT_EQ(active_backend(), Backend::kBlocked);
    }
    EXPECT_EQ(active_backend(), Backend::kNaive);
  }
  EXPECT_EQ(active_backend(), before);
}

TEST(Backend, EnvironmentVariableSelectsBackend) {
  // reset_backend() drops the cached resolution so the env var is re-read.
  for (Backend b : kAll) {
    ::setenv("DSML_BACKEND", to_string(b), 1);
    reset_backend();
    EXPECT_EQ(active_backend(), b) << to_string(b);
  }
  ::unsetenv("DSML_BACKEND");
  reset_backend();
}

TEST(Backend, MalformedEnvironmentValueThrows) {
  ::setenv("DSML_BACKEND", "warp-drive", 1);
  reset_backend();
  EXPECT_THROW(active_backend(), InvalidArgument);
  ::unsetenv("DSML_BACKEND");
  reset_backend();
}

TEST(Backend, OverrideBeatsEnvironment) {
  ::setenv("DSML_BACKEND", "naive", 1);
  reset_backend();
  {
    ScopedBackend pin(Backend::kBlocked);
    EXPECT_EQ(active_backend(), Backend::kBlocked);
  }
  EXPECT_EQ(active_backend(), Backend::kNaive);
  ::unsetenv("DSML_BACKEND");
  reset_backend();
}

TEST(Backend, SimdVariantConsistentWithAvailability) {
  if (simd_available()) {
    EXPECT_STRNE(simd_variant(), "none");
  } else {
    EXPECT_STREQ(simd_variant(), "none");
  }
}

// --- Cross-backend bit-identity over remainder-lane shapes -----------------

// Shapes chosen to cover every vector-lane remainder: widths 1..5 straddle
// the SSE2 (2-lane) and AVX2 (4-lane) double widths, 64/65 exercise full
// blocks plus a trailing element, and the zero planted in A exercises the
// sparsity skip in every GEMM path.
TEST(Backend, GemmBitIdenticalAcrossBackends) {
  Rng rng(11);
  for (std::size_t m : {1ul, 3ul, 5ul, 65ul}) {
    for (std::size_t k : {1ul, 7ul, 33ul}) {
      for (std::size_t n : {1ul, 2ul, 3ul, 4ul, 5ul, 9ul, 64ul}) {
        Matrix a(m, k);
        Matrix b(k, n);
        for (double& v : a.data()) v = rng.uniform(-2.0, 2.0);
        for (double& v : b.data()) v = rng.uniform(-2.0, 2.0);
        a.data()[(m * k) / 2] = 0.0;
        std::vector<std::vector<double>> results;
        for (Backend backend : kAll) {
          ScopedBackend pin(backend);
          Matrix c(m, n);
          kernels::gemm_accumulate(a.data().data(), k, b.data().data(), n,
                                   c.data().data(), n, m, k, n);
          results.emplace_back(c.data().begin(), c.data().end());
        }
        ASSERT_TRUE(same_bits(results[0], results[1]))
            << "naive vs blocked at " << m << "x" << k << "x" << n;
        ASSERT_TRUE(same_bits(results[0], results[2]))
            << "naive vs simd at " << m << "x" << k << "x" << n;
      }
    }
  }
}

TEST(Backend, GemvBitIdenticalAcrossBackends) {
  Rng rng(13);
  for (std::size_t m : {1ul, 2ul, 3ul, 4ul, 5ul, 7ul, 64ul, 65ul}) {
    for (std::size_t n : {1ul, 6ul, 40ul}) {
      Matrix a(m, n);
      for (double& v : a.data()) v = rng.uniform(-2.0, 2.0);
      std::vector<double> x(n);
      for (double& v : x) v = rng.uniform(-2.0, 2.0);
      std::vector<std::size_t> cols;
      for (std::size_t j = 0; j < n; j += 2) cols.push_back(j);
      std::vector<double> beta(cols.size());
      for (double& v : beta) v = rng.uniform(-2.0, 2.0);

      std::vector<std::vector<double>> dense;
      std::vector<std::vector<double>> gathered;
      for (Backend backend : kAll) {
        ScopedBackend pin(backend);
        std::vector<double> y(m);
        kernels::gemv(a.data().data(), n, m, n, x.data(), y.data());
        dense.push_back(y);
        std::vector<double> yc(m);
        kernels::gemv_columns(a.data().data(), n, m, cols.data(),
                              cols.size(), beta.data(), yc.data());
        gathered.push_back(yc);
      }
      ASSERT_TRUE(same_bits(dense[0], dense[1])) << m << "x" << n;
      ASSERT_TRUE(same_bits(dense[0], dense[2])) << m << "x" << n;
      ASSERT_TRUE(same_bits(gathered[0], gathered[1])) << m << "x" << n;
      ASSERT_TRUE(same_bits(gathered[0], gathered[2])) << m << "x" << n;
    }
  }
}

TEST(Backend, AffineForwardBitIdenticalAcrossBackends) {
  Rng rng(17);
  for (std::size_t rows : {1ul, 3ul, 33ul}) {
    for (std::size_t fan_in : {1ul, 5ul, 16ul}) {
      for (std::size_t fan_out : {1ul, 4ul, 9ul}) {
        Matrix x(rows, fan_in);
        Matrix w(fan_out, fan_in);
        std::vector<double> bias(fan_out);
        for (double& v : x.data()) v = rng.uniform(-1.0, 1.0);
        for (double& v : w.data()) v = rng.uniform(-1.0, 1.0);
        for (double& v : bias) v = rng.uniform(-1.0, 1.0);
        std::vector<std::vector<double>> results;
        for (Backend backend : kAll) {
          ScopedBackend pin(backend);
          Matrix out(rows, fan_out);
          Workspace ws;
          kernels::affine_forward(x.data().data(), fan_in, rows, fan_in,
                                  w.data().data(), bias.data(), fan_out,
                                  true, out.data().data(), fan_out, ws);
          results.emplace_back(out.data().begin(), out.data().end());
        }
        ASSERT_TRUE(same_bits(results[0], results[1]));
        ASSERT_TRUE(same_bits(results[0], results[2]));
      }
    }
  }
}

// Model-level pin: a full LinearRegression predict over the design space is
// bit-identical whichever backend serves the kernels.
TEST(Backend, LinearRegressionPredictBackendInvariant) {
  const auto configs = sim::enumerate_design_space();
  std::vector<double> cycles;
  Rng noise(3);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    cycles.push_back(1e6 + noise.uniform(0.0, 1e5));
  }
  const data::Dataset full =
      sim::make_config_dataset(configs, std::move(cycles));
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < full.n_rows(); i += 9) idx.push_back(i);
  const data::Dataset train = full.select_rows(idx);

  ml::LinearRegression model;
  model.fit(train);
  std::vector<std::vector<double>> results;
  for (Backend backend : kAll) {
    ScopedBackend pin(backend);
    results.push_back(model.predict(full));
  }
  EXPECT_TRUE(same_bits(results[0], results[1]));
  EXPECT_TRUE(same_bits(results[0], results[2]));
}

// --- Float32 path: error budget and edge cases -----------------------------

data::Dataset table3_space() {
  const auto configs = sim::enumerate_design_space();
  std::vector<double> cycles;
  Rng noise(29);
  for (const auto& c : configs) {
    double v = 4.0e6;
    v -= 1.0e4 * std::log2(static_cast<double>(c.l1d_size_kb));
    v -= 2.0e3 * static_cast<double>(c.width);
    v *= 1.0 + 0.02 * noise.uniform(-1.0, 1.0);
    cycles.push_back(v);
  }
  return sim::make_config_dataset(configs, std::move(cycles));
}

// Property: for every Table-3 model family with an f32 path, snapshot
// predictions stay within 1e-5 relative error of the double path over the
// whole design space.
TEST(BackendF32, ErrorBudgetOnTable3Models) {
  const data::Dataset full = table3_space();
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < full.n_rows(); i += 7) idx.push_back(i);
  const data::Dataset train = full.select_rows(idx);

  for (const char* name : {"LR-E", "LR-S", "LR-F", "LR-B", "NN-Q"}) {
    ml::ZooOptions zoo;
    zoo.nn_epoch_scale = 0.05;  // budget test, not an accuracy test
    std::unique_ptr<ml::Regressor> model = ml::make_model(name, zoo).make();
    model->fit(train);
    const std::unique_ptr<ml::F32Predictor> f32 =
        ml::make_f32_predictor(*model);
    ASSERT_NE(f32, nullptr) << name;
    const std::vector<double> d = model->predict(full);
    const std::vector<double> f = f32->predict(full);
    ASSERT_EQ(d.size(), f.size());
    double max_rel = 0.0;
    for (std::size_t r = 0; r < d.size(); ++r) {
      max_rel = std::max(max_rel, std::abs(f[r] - d[r]) /
                                      std::max(std::abs(d[r]), 1e-12));
    }
    EXPECT_LE(max_rel, 1e-5) << name;
  }
}

TEST(BackendF32, SnapshotIsBackendInvariantWithinBudget) {
  // The f32 kernels may use FMA (they are error-budgeted, not bit-pinned),
  // so across backends we assert the budget, not bit-identity.
  const data::Dataset full = table3_space();
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < full.n_rows(); i += 7) idx.push_back(i);
  ml::LinearRegression model;
  model.fit(full.select_rows(idx));
  const std::unique_ptr<ml::F32Predictor> f32 = ml::make_f32_predictor(model);
  ASSERT_NE(f32, nullptr);
  const std::vector<double> d = model.predict(full);
  for (Backend backend : kAll) {
    ScopedBackend pin(backend);
    const std::vector<double> f = f32->predict(full);
    for (std::size_t r = 0; r < d.size(); ++r) {
      ASSERT_LE(std::abs(f[r] - d[r]),
                1e-5 * std::max(std::abs(d[r]), 1e-12))
          << to_string(backend) << " row " << r;
    }
  }
}

TEST(BackendF32, UnfittedModelThrows) {
  const ml::LinearRegression unfitted;
  EXPECT_THROW(ml::make_f32_predictor(unfitted), InvalidArgument);
}

}  // namespace
}  // namespace dsml::linalg
