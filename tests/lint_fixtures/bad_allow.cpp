// Fixture: an allow() directive naming a rule that does not exist.
int harmless() {
  return 1;  // dsml-lint: allow(no-such-rule)
}
