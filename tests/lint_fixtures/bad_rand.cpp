// Fixture: rand-source violations.
#include <cstdlib>
#include <random>

int noise() {
  std::mt19937 gen;
  return static_cast<int>(gen()) + std::rand();
}
