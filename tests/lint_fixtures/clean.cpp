// Fixture: a fully clean translation unit.
#include <memory>
#include <vector>

int tidy() {
  auto owned = std::make_unique<int>(3);
  std::vector<int> values = {1, 2, *owned};
  int total = 0;
  for (int v : values) total += v;
  return total;
}
