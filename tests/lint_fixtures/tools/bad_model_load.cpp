// Fixture: direct-model-load-in-tools violation (tools/ code loading a model
// artifact directly instead of going through engine::ModelRegistry), plus an
// allow-directive escape on the second load.
#include <memory>
#include <string>

namespace ml {
struct Regressor;
// NOLINTNEXTLINE-style escape: the declaration itself matches the call
// pattern, so it carries the allow directive on its own line.
std::unique_ptr<Regressor> load_model(const std::string&);  // dsml-lint: allow(direct-model-load-in-tools)
}  // namespace ml

void naughty(const std::string& path) {
  auto direct = ml::load_model(path);
  auto sanctioned =
      ml::load_model(path);  // dsml-lint: allow(direct-model-load-in-tools)
  (void)direct;
  (void)sanctioned;
}
