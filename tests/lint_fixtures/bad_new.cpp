// Fixture: naked-new violations.
int leak() {
  int* p = new int(42);
  const int v = *p;
  delete p;
  return v;
}
