// Fixture: header-guard violation (#ifndef guard instead of #pragma once).
#ifndef DSML_TESTS_LINT_FIXTURES_BAD_HEADER_HPP_
#define DSML_TESTS_LINT_FIXTURES_BAD_HEADER_HPP_

int fixture_value();

#endif  // DSML_TESTS_LINT_FIXTURES_BAD_HEADER_HPP_
