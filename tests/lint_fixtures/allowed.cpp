// Fixture: every violation here carries a suppression, so the file is clean.
#include <cstdlib>

int sanctioned_rand() {
  return std::rand();  // dsml-lint: allow(rand-source)
}

int sanctioned_new() {
  int* p = new int(7);  // dsml-lint: allow(naked-new)
  const int v = *p;
  delete p;  // dsml-lint: allow(naked-new)
  return v;
}
