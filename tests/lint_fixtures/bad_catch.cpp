// Fixture: catch-all-swallow violation (exception silently dropped).
void risky();

int shield() {
  try {
    risky();
  } catch (...) {
    return -1;
  }
  return 0;
}
