// Fixture for the raw-std-throw rule: library code under src/ must throw the
// dsml taxonomy, not bare std exceptions.
#include <stdexcept>

namespace dsml::ml {

void flagged(int n) {
  if (n < 0) throw std::runtime_error("negative");  // should be flagged
}

void suppressed(int n) {
  // Deliberate escape hatch, mirroring common/error.hpp's assert_fail.
  if (n > 9000) {
    throw std::logic_error("over 9000");  // dsml-lint: allow(raw-std-throw)
  }
}

}  // namespace dsml::ml
