// Fixture: float-accum violation (float accumulation in ml code).
double sum(const double* values, int n) {
  float total = 0.0f;
  for (int i = 0; i < n; ++i) total += static_cast<float>(values[i]);
  return total;
}
