// Fixture: matrix-elem-in-loop violation (per-element operator() walk in an
// ML hot loop instead of row spans / batched kernels).
double trace_like(const Matrix& m, int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      total += m(i, j);
    }
  }
  return total;
}
