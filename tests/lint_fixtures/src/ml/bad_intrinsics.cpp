// Fixture: intrinsics-outside-simd violations (vector intrinsics in ml code
// instead of behind the src/linalg/simd dispatch layer), plus an
// allow-directive escape on the prefetch line.
#include <immintrin.h>

double sum4(const double* values) {
  __m256d v = _mm256_loadu_pd(values);
  v = _mm256_add_pd(v, v);
  double out[4];
  _mm256_storeu_pd(out, v);
  return out[0] + out[1] + out[2] + out[3];
}

void warm(const char* p) {
  _mm_prefetch(p, 1);  // dsml-lint: allow(intrinsics-outside-simd)
}
