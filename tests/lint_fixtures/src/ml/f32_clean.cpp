// Fixture: float-accum carve-out — an f32-named source under src/ml is the
// opt-in float32 serving path and may use float freely (its accuracy is
// covered by the 1e-5 error budget, not the double bit-identity contract).
float accumulate_f32(const float* values, int n) {
  float total = 0.0f;
  for (int i = 0; i < n; ++i) total += values[i];
  return total;
}
