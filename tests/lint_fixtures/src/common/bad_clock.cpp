// Fixture: raw-clock-in-lib violation (direct std::chrono clock read in
// library code), plus an allow-directive escape on the second read.
#include <chrono>

double elapsed_seconds() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 =
      std::chrono::steady_clock::now();  // dsml-lint: allow(raw-clock-in-lib)
  return std::chrono::duration<double>(t1 - t0).count();
}
