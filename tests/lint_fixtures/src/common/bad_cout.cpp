// Fixture: iostream-in-lib violation (console output from library code).
#include <iostream>

void report(int value) { std::cout << "value = " << value << "\n"; }
