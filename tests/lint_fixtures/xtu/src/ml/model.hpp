// Fixture: a legal upper-layer header (ml may depend on common).
#pragma once

#include "common/cycle_a.hpp"

namespace fixture {
inline int model_rank() { return 3; }
}  // namespace fixture
