// Fixture: SUPPRESSED twin of names.cpp — every typo'd name carries an
// inline allow() directive, so none of them surface.
namespace fixture {

void sanctioned_typos() {
  DSML_FAIL("core.io.fial");           // dsml-lint: allow(unregistered-failpoint)
  metrics::counter("core.reqests");    // dsml-lint: allow(unregistered-metric)
  trace::Span span("core.sacn");       // dsml-lint: allow(unregistered-metric)
}

}  // namespace fixture
