// Fixture: SUPPRESSED twin of uses_ml.hpp — the inline allow() directive on
// the include line keeps the back-edge out of the findings.
#pragma once

#include "ml/model.hpp"  // dsml-lint: allow(layer-violation)

namespace fixture {
inline int sanctioned_call_up() { return model_rank(); }
}  // namespace fixture
