// Fixture: HIT for layer-violation — common is the bottom layer, so this
// include is a back-edge against tools/lint/layers.def.
#pragma once

#include "ml/model.hpp"

namespace fixture {
inline int bottom_calls_up() { return model_rank(); }
}  // namespace fixture
