// Fixture: HIT for layer-violation (include cycle) — cycle_a and cycle_b
// include each other, so neither can be ordered before the other.
#pragma once

#include "common/cycle_b.hpp"
