// Fixture: second half of the cycle_a.hpp include cycle.
#pragma once

#include "common/cycle_a.hpp"
