// Fixture: HITs for unregistered-failpoint and unregistered-metric — each
// typo'd name is missing from docs/registries/, while the registered twins
// right next to them stay clean.
namespace fixture {

void registered_names() {
  DSML_FAIL("core.io.fail");
  metrics::counter("core.requests");
  trace::Span span("core.scan");
}

void typoed_names() {
  DSML_FAIL("core.io.fial");
  metrics::counter("core.reqests");
  trace::Span span("core.sacn");
}

void dynamic_names_never_register(const char* suffix) {
  metrics::counter(std::string("core.") + suffix);
}

}  // namespace fixture
