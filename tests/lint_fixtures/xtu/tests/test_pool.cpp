// Fixture: HIT for missing-tsan-label — this test uses the thread pool but
// its dsml_test() entry in tests/CMakeLists.txt carries no tsan label.
#include "common/thread_pool.hpp"

namespace fixture {
void drive_pool() {}
}  // namespace fixture
