// Fixture: SUPPRESSED twin of test_pool.cpp — the allow() directive on the
// include line overrides the missing label.
#include "common/thread_pool.hpp"  // dsml-lint: allow(missing-tsan-label)

namespace fixture {
void drive_pool_suppressed() {}
}  // namespace fixture
