// Fixture: CLEAN twin of test_pool.cpp — the dsml_test() entry carries
// LABELS tsan, so the concurrency include is fine.
#include "common/thread_pool.hpp"

namespace fixture {
void drive_pool_labelled() {}
}  // namespace fixture
