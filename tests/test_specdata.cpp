#include "specdata/generator.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/stats.hpp"

namespace dsml::specdata {
namespace {

TEST(Families, SevenFamilies) {
  EXPECT_EQ(all_families().size(), 7u);
}

TEST(Families, ChipCounts) {
  EXPECT_EQ(family_chip_count(Family::kXeon), 1);
  EXPECT_EQ(family_chip_count(Family::kOpteron), 1);
  EXPECT_EQ(family_chip_count(Family::kOpteron2), 2);
  EXPECT_EQ(family_chip_count(Family::kOpteron4), 4);
  EXPECT_EQ(family_chip_count(Family::kOpteron8), 8);
}

TEST(Generator, RecordCountsMatchPaper) {
  for (Family family : all_families()) {
    const auto records = generate_family(family, {});
    EXPECT_EQ(records.size(), paper_family_stats(family).records)
        << to_string(family);
  }
}

TEST(Generator, RecordScaleApplies) {
  GeneratorOptions opt;
  opt.record_scale = 0.5;
  const auto records = generate_family(Family::kXeon, opt);
  EXPECT_EQ(records.size(), 108u);
}

TEST(Generator, DeterministicBySeed) {
  const auto a = generate_family(Family::kOpteron, {});
  const auto b = generate_family(Family::kOpteron, {});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].processor_model, b[i].processor_model);
    EXPECT_DOUBLE_EQ(a[i].spec_rating, b[i].spec_rating);
  }
}

TEST(Generator, SeedChangesData) {
  GeneratorOptions opt;
  opt.seed = 999;
  const auto a = generate_family(Family::kOpteron, {});
  const auto b = generate_family(Family::kOpteron, opt);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    differs |= a[i].spec_rating != b[i].spec_rating;
  }
  EXPECT_TRUE(differs);
}

TEST(Generator, RatingStatsNearPaperTargets) {
  // Loose calibration bands: range within 35% relative, variation within a
  // factor of two. (Exact reproduction is impossible; the generator is a
  // documented substitute for the SPEC database.)
  for (Family family : all_families()) {
    const auto records = generate_family(family, {});
    std::vector<double> ratings;
    for (const auto& r : records) ratings.push_back(r.spec_rating);
    const FamilyStats paper = paper_family_stats(family);
    const double range = stats::range_ratio(ratings);
    EXPECT_GT(range, 1.0 + (paper.range - 1.0) * 0.4) << to_string(family);
    EXPECT_LT(range, 1.0 + (paper.range - 1.0) * 2.0) << to_string(family);
    const double variation = stats::variation(ratings);
    EXPECT_GT(variation, paper.variation * 0.4) << to_string(family);
    EXPECT_LT(variation, paper.variation * 2.0) << to_string(family);
  }
}

TEST(Generator, BothYearsPresent) {
  for (Family family : all_families()) {
    const auto records = generate_family(family, {});
    std::size_t y2005 = 0;
    std::size_t y2006 = 0;
    for (const auto& r : records) {
      if (r.year == 2005) ++y2005;
      if (r.year == 2006) ++y2006;
    }
    EXPECT_GT(y2005, records.size() / 4) << to_string(family);
    EXPECT_GT(y2006, records.size() / 4) << to_string(family);
    EXPECT_EQ(y2005 + y2006, records.size()) << to_string(family);
  }
}

TEST(Generator, TechnologyDriftBetweenYears) {
  // 2006 systems are on average faster (new SKUs, faster memory).
  const auto records = generate_family(Family::kXeon, {});
  stats::RunningStats speed2005;
  stats::RunningStats speed2006;
  stats::RunningStats mem2005;
  stats::RunningStats mem2006;
  for (const auto& r : records) {
    if (r.year == 2005) {
      speed2005.add(r.processor_speed_mhz);
      mem2005.add(r.memory_frequency_mhz);
    } else {
      speed2006.add(r.processor_speed_mhz);
      mem2006.add(r.memory_frequency_mhz);
    }
  }
  EXPECT_GT(speed2006.mean(), speed2005.mean());
  EXPECT_GT(mem2006.mean(), mem2005.mean());
}

TEST(Generator, ChipCountsConsistent) {
  for (Family family : {Family::kOpteron2, Family::kOpteron8}) {
    for (const auto& r : generate_family(family, {})) {
      EXPECT_EQ(r.total_chips, family_chip_count(family));
      EXPECT_EQ(r.total_cores, r.total_chips * r.cores_per_chip);
      EXPECT_TRUE(r.parallel);
    }
  }
}

TEST(Generator, RatingsTrackGroundTruth) {
  // The published rating is the hidden function plus bounded noise.
  for (const auto& r : generate_family(Family::kPentium4, {})) {
    const double expected = ground_truth_rating(r);
    EXPECT_NEAR(r.spec_rating / expected, 1.0, 0.12);
  }
}

TEST(GroundTruth, MonotoneInProcessorSpeed) {
  Announcement a;
  a.family = Family::kXeon;
  a.processor_speed_mhz = 2800;
  Announcement b = a;
  b.processor_speed_mhz = 3800;
  EXPECT_GT(ground_truth_rating(b), ground_truth_rating(a));
}

TEST(GroundTruth, MonotoneInL2AndMemoryFrequency) {
  Announcement a;
  a.family = Family::kPentium4;
  a.l2_size_kb = 256;
  a.memory_frequency_mhz = 266;
  Announcement b = a;
  b.l2_size_kb = 2048;
  EXPECT_GT(ground_truth_rating(b), ground_truth_rating(a));
  Announcement c = a;
  c.memory_frequency_mhz = 533;
  EXPECT_GT(ground_truth_rating(c), ground_truth_rating(a));
}

TEST(Dataset, ThirtyTwoPlusFeatures) {
  const auto records = generate_family(Family::kXeon, {});
  const data::Dataset ds = to_dataset(records);
  // The paper counts "32 system parameters"; our schema carries 33 columns
  // (the extra-components field rides along).
  EXPECT_GE(ds.n_features(), 32u);
  EXPECT_TRUE(ds.has_target());
  EXPECT_EQ(ds.target_name(), "specint_rate");
}

TEST(Dataset, MixedColumnKinds) {
  const auto records = generate_family(Family::kOpteron2, {});
  const data::Dataset ds = to_dataset(records);
  EXPECT_EQ(ds.feature("company").kind(), data::ColumnKind::kCategorical);
  EXPECT_EQ(ds.feature("smt").kind(), data::ColumnKind::kFlag);
  EXPECT_EQ(ds.feature("processor_speed_mhz").kind(),
            data::ColumnKind::kNumeric);
}

TEST(ChronologicalSplit, PartitionsByYear) {
  const auto records = generate_family(Family::kOpteron, {});
  const auto [train, test] = chronological_split(records, 2005);
  EXPECT_EQ(train.n_rows() + test.n_rows(), records.size());
  EXPECT_GT(train.n_rows(), 0u);
  EXPECT_GT(test.n_rows(), 0u);
}

TEST(ChronologicalSplit, SharedLevelDictionaries) {
  const auto records = generate_family(Family::kXeon, {});
  const auto [train, test] = chronological_split(records, 2005);
  EXPECT_EQ(train.feature("processor_model").levels(),
            test.feature("processor_model").levels());
}

TEST(ChronologicalSplit, EmptySideThrows) {
  const auto records = generate_family(Family::kXeon, {});
  EXPECT_THROW(chronological_split(records, 1990), InvalidArgument);
  EXPECT_THROW(chronological_split(records, 2010), InvalidArgument);
}

TEST(FamilyNames, AllDistinct) {
  std::set<std::string> names;
  for (Family family : all_families()) names.insert(to_string(family));
  EXPECT_EQ(names.size(), 7u);
}

}  // namespace
}  // namespace dsml::specdata
