// Property sweeps over the simulator: invariants that must hold for every
// configuration in the design space, checked on a random subset.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "sim/core.hpp"
#include "workload/generator.hpp"
#include "workload/profiles.hpp"

namespace dsml::sim {
namespace {

const Trace& shared_trace() {
  static const Trace trace =
      workload::generate_trace(workload::spec_profile("equake"), 20000);
  return trace;
}

std::vector<ProcessorConfig> random_configs(std::size_t count,
                                            std::uint64_t seed) {
  const auto space = enumerate_design_space();
  Rng rng(seed);
  std::vector<ProcessorConfig> out;
  for (std::size_t i : rng.sample_without_replacement(space.size(), count)) {
    out.push_back(space[i]);
  }
  return out;
}

class RandomConfigProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomConfigProperty, SimulationInvariants) {
  const Trace& trace = shared_trace();
  for (const auto& config : random_configs(8, GetParam())) {
    const SimResult result = simulate(config, trace);
    // Cycles bounded below by issue-width throughput and above by a full
    // serialisation at worst-case memory latency per instruction.
    EXPECT_GE(result.cycles, trace.size() / static_cast<std::size_t>(
                                                config.width))
        << config.key();
    EXPECT_LT(result.cycles, trace.size() * 500ULL) << config.key();
    // Rates are rates; counters are consistent.
    const SimStats& s = result.stats;
    EXPECT_EQ(s.instructions, trace.size());
    for (double rate :
         {s.l1d_miss_rate, s.l1i_miss_rate, s.l2_miss_rate, s.l3_miss_rate,
          s.branch_mispredict_rate, s.itlb_miss_rate, s.dtlb_miss_rate}) {
      EXPECT_GE(rate, 0.0) << config.key();
      EXPECT_LE(rate, 1.0) << config.key();
    }
    EXPECT_NEAR(s.ipc,
                static_cast<double>(s.instructions) /
                    static_cast<double>(s.cycles),
                1e-9);
    if (config.branch_predictor == BranchPredictorKind::kPerfect) {
      EXPECT_EQ(s.mispredicts, 0u) << config.key();
    }
  }
}

TEST_P(RandomConfigProperty, DeterministicAcrossRuns) {
  const Trace& trace = shared_trace();
  for (const auto& config : random_configs(4, GetParam() + 100)) {
    EXPECT_EQ(simulate(config, trace).cycles, simulate(config, trace).cycles)
        << config.key();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomConfigProperty,
                         ::testing::Values(1, 2, 3, 4));

class AppTraceProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(AppTraceProperty, AllPredictorsBeatOrMatchNothingButPerfectIsBest) {
  const Trace trace =
      workload::generate_trace(workload::spec_profile(GetParam()), 20000);
  ProcessorConfig config;
  std::uint64_t perfect_cycles = 0;
  for (BranchPredictorKind kind :
       {BranchPredictorKind::kPerfect, BranchPredictorKind::kBimodal,
        BranchPredictorKind::kTwoLevel, BranchPredictorKind::kCombination}) {
    config.branch_predictor = kind;
    const auto result = simulate(config, trace);
    if (kind == BranchPredictorKind::kPerfect) {
      perfect_cycles = result.cycles;
    } else {
      EXPECT_GE(result.cycles, perfect_cycles)
          << GetParam() << " " << to_string(kind);
    }
  }
}

TEST_P(AppTraceProperty, UpgradingEverythingNeverHurts) {
  const Trace trace =
      workload::generate_trace(workload::spec_profile(GetParam()), 20000);
  ProcessorConfig weakest;
  weakest.l1d_size_kb = 16;
  weakest.l1i_size_kb = 16;
  weakest.l2_size_kb = 256;
  weakest.branch_predictor = BranchPredictorKind::kBimodal;
  weakest.width = 4;
  weakest.ruu_size = 128;
  weakest.lsq_size = 64;
  weakest.itlb_size_kb = 256;
  weakest.dtlb_size_kb = 512;
  weakest.fu = {4, 2, 2, 4, 2};
  ProcessorConfig strongest = weakest;
  strongest.l1d_size_kb = 64;
  strongest.l1i_size_kb = 64;
  strongest.l1d_line_b = 64;
  strongest.l1i_line_b = 64;
  strongest.l2_size_kb = 1024;
  strongest.l2_assoc = 8;
  strongest.l3_size_mb = 8;
  strongest.l3_line_b = 256;
  strongest.l3_assoc = 8;
  strongest.branch_predictor = BranchPredictorKind::kPerfect;
  strongest.width = 8;
  strongest.fu = {8, 4, 4, 8, 4};
  strongest.ruu_size = 256;
  strongest.lsq_size = 128;
  strongest.itlb_size_kb = 1024;
  strongest.dtlb_size_kb = 2048;
  EXPECT_LT(simulate(strongest, trace).cycles,
            simulate(weakest, trace).cycles)
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Apps, AppTraceProperty,
                         ::testing::Values("applu", "equake", "gcc", "mesa",
                                           "mcf"));

}  // namespace
}  // namespace dsml::sim
