#include "cli.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/csv.hpp"
#include "common/json.hpp"
#include "data/column.hpp"
#include "engine/design_space.hpp"
#include "engine/registry.hpp"
#include "engine/schema.hpp"
#include "engine/serve.hpp"
#include "linalg/backend.hpp"
#include "net/client.hpp"
#include "net/server.hpp"

namespace dsml::cli {
namespace {

struct CliResult {
  int exit_code;
  std::string out;
  std::string err;
};

CliResult run_cli(std::vector<std::string> args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run(args, out, err);
  return {code, out.str(), err.str()};
}

/// Variant feeding `input` as the command's stdin (`dsml serve`).
CliResult run_cli(std::vector<std::string> args, const std::string& input) {
  std::istringstream in(input);
  std::ostringstream out;
  std::ostringstream err;
  const int code = run(args, in, out, err);
  return {code, out.str(), err.str()};
}

/// Serializes design-space row `row` as a serve-protocol JSON object keyed
/// by schema column names.
std::string design_row_json(std::size_t row) {
  const engine::Schema& schema = engine::design_space_schema();
  const data::Dataset& space = engine::design_space_dataset();
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const engine::SchemaColumn& col : schema.columns()) {
    if (!first) os << ",";
    first = false;
    os << "\"" << col.name << "\":";
    const data::Column& c = space.feature(col.name);
    switch (col.kind) {
      case data::ColumnKind::kNumeric:
        os << c.numeric_at(row);
        break;
      case data::ColumnKind::kFlag:
        os << (c.code_at(row) != 0 ? "true" : "false");
        break;
      case data::ColumnKind::kCategorical:
        os << "\"" << c.label_at(row) << "\"";
        break;
    }
  }
  os << "}";
  return os.str();
}

/// Writes the first `n` design-space rows as a CSV file in schema order.
void write_design_csv(const std::string& path, std::size_t n) {
  const engine::Schema& schema = engine::design_space_schema();
  const data::Dataset& space = engine::design_space_dataset();
  csv::Table table;
  for (const engine::SchemaColumn& col : schema.columns()) {
    table.header.push_back(col.name);
  }
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<std::string> cells;
    for (const engine::SchemaColumn& col : schema.columns()) {
      const data::Column& c = space.feature(col.name);
      if (col.kind == data::ColumnKind::kNumeric) {
        std::ostringstream cell;
        cell << c.numeric_at(r);
        cells.push_back(cell.str());
      } else if (col.kind == data::ColumnKind::kFlag) {
        cells.push_back(c.code_at(r) != 0 ? "1" : "0");
      } else {
        cells.push_back(c.label_at(r));
      }
    }
    table.rows.push_back(std::move(cells));
  }
  csv::write_file(path, table);
}

// The CLI tests use a throwaway cache dir and tiny sweeps so they stay fast.
class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cache_dir_ = (std::filesystem::temp_directory_path() / "dsml_cli_cache")
                     .string();
    ::setenv("DSML_CACHE_DIR", cache_dir_.c_str(), 1);
  }
  void TearDown() override {
    ::unsetenv("DSML_CACHE_DIR");
    std::filesystem::remove_all(cache_dir_);
  }
  std::vector<std::string> tiny_sweep_args() const {
    return {"--full", "40000", "--interval", "4000", "--clusters", "2"};
  }
  std::string cache_dir_;
};

TEST_F(CliTest, NoArgumentsShowsUsageAndFails) {
  const auto result = run_cli({});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.out.find("usage:"), std::string::npos);
}

TEST_F(CliTest, HelpSucceeds) {
  const auto result = run_cli({"help"});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.out.find("commands:"), std::string::npos);
}

TEST_F(CliTest, LintSubcommandListsRules) {
  const auto result = run_cli({"lint", "--list-rules"});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.out.find("rand-source"), std::string::npos);
  EXPECT_NE(result.out.find("naked-new"), std::string::npos);
}

TEST_F(CliTest, LintSubcommandRejectsMissingPath) {
  const auto result = run_cli({"lint", "/no/such/dsml/path"});
  EXPECT_EQ(result.exit_code, 2);
}

TEST_F(CliTest, UnknownCommandFails) {
  const auto result = run_cli({"frobnicate"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("unknown command"), std::string::npos);
}

TEST_F(CliTest, MissingOptionValueFails) {
  const auto result = run_cli({"sweep", "--app"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("missing value"), std::string::npos);
}

TEST_F(CliTest, ListEnumeratesEverything) {
  const auto result = run_cli({"list"});
  EXPECT_EQ(result.exit_code, 0);
  for (const char* expected : {"applu", "mcf", "xeon", "opteron8", "LR-B",
                               "NN-E"}) {
    EXPECT_NE(result.out.find(expected), std::string::npos) << expected;
  }
}

TEST_F(CliTest, SweepRunsAndCaches) {
  auto args = tiny_sweep_args();
  args.insert(args.begin(), {"sweep", "--app", "applu"});
  const auto first = run_cli(args);
  EXPECT_EQ(first.exit_code, 0) << first.err;
  EXPECT_NE(first.out.find("4608 configurations"), std::string::npos);
  const auto second = run_cli(args);
  EXPECT_NE(second.out.find("[cache]"), std::string::npos);
}

TEST_F(CliTest, SweepCsvExport) {
  const std::string csv_path =
      (std::filesystem::temp_directory_path() / "dsml_cli_sweep.csv").string();
  auto args = tiny_sweep_args();
  args.insert(args.begin(), {"sweep", "--app", "applu"});
  args.insert(args.end(), {"--csv", csv_path});
  const auto result = run_cli(args);
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_TRUE(std::filesystem::exists(csv_path));
  std::filesystem::remove(csv_path);
}

TEST_F(CliTest, SampledExperimentPrintsTable) {
  auto args = tiny_sweep_args();
  args.insert(args.begin(),
              {"sampled", "--app", "applu", "--rates", "0.02", "--models",
               "LR-B"});
  const auto result = run_cli(args);
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("LR-B"), std::string::npos);
  EXPECT_NE(result.out.find("select @2%"), std::string::npos);
}

/// A golden transcript captured from the pre-campaign seed drivers
/// (tests/data/dse/): the Campaign refactor must keep these CLI outputs
/// byte-identical.
std::string read_golden(const std::string& name) {
  const std::string path =
      std::string(DSML_REPO_ROOT) + "/tests/data/dse/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST_F(CliTest, SampledOutputIsByteIdenticalToTheSeedGolden) {
  auto args = tiny_sweep_args();
  args.insert(args.begin(), {"sampled", "--app", "applu", "--rates",
                             "0.01,0.02", "--models", "LR-B,NN-S"});
  const auto clean = run_cli(args);
  EXPECT_EQ(clean.exit_code, 0) << clean.err;
  EXPECT_EQ(clean.out, read_golden("sampled_golden.txt"));

  // Degraded run: the armed eval failpoint costs exactly one tabulated cell
  // and one banner line, nothing else (single-model menu so the nth trigger
  // lands deterministically at any thread count).
  auto degraded_args = tiny_sweep_args();
  degraded_args.insert(degraded_args.begin(),
                       {"sampled", "--app", "applu", "--rates", "0.01,0.02",
                        "--models", "LR-B", "--failpoints",
                        "dse.sampled.eval=nth:1"});
  const auto degraded = run_cli(degraded_args);
  EXPECT_EQ(degraded.exit_code, 0) << degraded.err;
  EXPECT_EQ(degraded.out, read_golden("sampled_golden_degraded.txt"));
}

TEST_F(CliTest, ChronoOutputIsByteIdenticalToTheSeedGolden) {
  const auto result = run_cli({"chrono", "--family", "pd"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_EQ(result.out, read_golden("chrono_golden.txt"));
}

TEST_F(CliTest, AdaptiveCampaignMatchesItsGoldenCleanAndDegraded) {
  auto args = tiny_sweep_args();
  args.insert(args.begin(), {"dse", "--app", "applu", "--sampler", "adaptive",
                             "--budget", "24", "--rounds", "2", "--truth"});
  const auto clean = run_cli(args);
  EXPECT_EQ(clean.exit_code, 0) << clean.err;
  EXPECT_EQ(clean.out, read_golden("campaign_golden.txt"));

  // An injected transient in the campaign round loop: one failure record,
  // one bounded retry, and a table byte-identical to the clean run.
  auto degraded_args = args;
  degraded_args.insert(degraded_args.begin(),
                       {"--failpoints", "dse.campaign.round=nth:1"});
  const auto degraded = run_cli(degraded_args);
  EXPECT_EQ(degraded.exit_code, 0) << degraded.err;
  EXPECT_EQ(degraded.out, read_golden("campaign_golden_degraded.txt"));
}

TEST_F(CliTest, RandomCampaignRunsWithABudget) {
  auto args = tiny_sweep_args();
  args.insert(args.begin(), {"dse", "--app", "applu", "--sampler", "random",
                             "--budget", "20", "--truth", "--models", "LR-B"});
  const auto result = run_cli(args);
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("campaign applu: sampler random"),
            std::string::npos);
  EXPECT_NE(result.out.find("evaluated 20 of 4608"), std::string::npos);
}

TEST_F(CliTest, CampaignFlagValidationNamesTheFlag) {
  const struct {
    std::vector<std::string> args;
    const char* expect;
  } cases[] = {
      {{"dse", "--sampler", "random", "--budget", "abc"},
       "--budget: expected a non-negative integer"},
      {{"dse", "--sampler", "random", "--budget", "0"},
       "--budget must be >= 1"},
      {{"dse", "--sampler", "random", "--budget", "5000"},
       "--budget: the design space has 4608"},
      {{"dse", "--sampler", "random", "--budget", "10", "--rounds", "zz"},
       "--rounds: expected a non-negative integer"},
      {{"dse", "--sampler", "random", "--budget", "10", "--rounds", "0"},
       "--rounds must be >= 1"},
      {{"dse", "--sampler", "adaptive", "--budget", "10", "--rounds", "11"},
       "--rounds: more rounds (11) than budget (10)"},
      {{"dse", "--sampler", "random", "--sample-rate", "huge"},
       "--sample-rate: expected a fraction in (0,1], got 'huge'"},
      {{"dse", "--sampler", "random", "--sample-rate", "0"},
       "--sample-rate: expected a fraction in (0,1], got '0'"},
      {{"dse", "--sampler", "random", "--sample-rate", "1.5"},
       "--sample-rate: expected a fraction in (0,1], got '1.5'"},
      {{"dse", "--sampler", "random", "--budget", "10", "--sample-rate",
        "0.01"},
       "--budget and --sample-rate are mutually exclusive"},
      {{"dse", "--sampler", "random", "--objective", "latency"},
       "unknown objective 'latency' (cycles|pareto)"},
      {{"dse", "--sampler", "greedy"},
       "unknown sampler 'greedy' (random|adaptive)"},
      {{"dse"}, "dse requires --sampler random|adaptive or --workers"},
  };
  for (const auto& c : cases) {
    const auto result = run_cli(c.args);
    EXPECT_EQ(result.exit_code, 1) << c.expect;
    EXPECT_NE(result.err.find(c.expect), std::string::npos) << result.err;
  }
}

TEST_F(CliTest, ChronoExperimentRuns) {
  const auto result =
      run_cli({"chrono", "--family", "pd", "--models", "LR-E,LR-S"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("Pentium D"), std::string::npos);
  EXPECT_NE(result.out.find("best:"), std::string::npos);
}

TEST_F(CliTest, ChronoFpTarget) {
  const auto result = run_cli(
      {"chrono", "--family", "xeon", "--target", "fp", "--models", "LR-E"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("specfp_rate"), std::string::npos);
}

TEST_F(CliTest, ChronoBadFamilyFails) {
  const auto result = run_cli({"chrono", "--family", "alpha"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("unknown family"), std::string::npos);
}

TEST_F(CliTest, TrainThenPredictRoundTrip) {
  const std::string model_path =
      (std::filesystem::temp_directory_path() / "dsml_cli_model.dsml")
          .string();
  auto train_args = tiny_sweep_args();
  train_args.insert(train_args.begin(),
                    {"train", "--app", "applu", "--rate", "0.02", "--model",
                     "LR-B", "--out", model_path});
  const auto train_result = run_cli(train_args);
  EXPECT_EQ(train_result.exit_code, 0) << train_result.err;
  EXPECT_TRUE(std::filesystem::exists(model_path));

  const auto predict_result =
      run_cli({"predict", "--model", model_path, "--top", "3"});
  EXPECT_EQ(predict_result.exit_code, 0) << predict_result.err;
  EXPECT_NE(predict_result.out.find("rank"), std::string::npos);
  EXPECT_NE(predict_result.out.find("LR-B"), std::string::npos);
  std::filesystem::remove(model_path);
}

TEST_F(CliTest, PredictWithoutModelFails) {
  const auto result = run_cli({"predict"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("--model"), std::string::npos);
}

TEST_F(CliTest, TraceFlagWritesChromeTraceFile) {
  const std::string trace_path =
      (std::filesystem::temp_directory_path() / "dsml_cli_trace.json")
          .string();
  std::filesystem::remove(trace_path);
  const auto result = run_cli({"list", "--trace", trace_path});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  ASSERT_TRUE(std::filesystem::exists(trace_path));
  const json::Value doc = json::Value::parse_file(trace_path);
  const auto& events = doc.at("traceEvents").items();
  ASSERT_FALSE(events.empty());
  bool found_command_span = false;
  for (const auto& e : events) {
    if (e.at("name").as_string() == "dsml list") found_command_span = true;
  }
  EXPECT_TRUE(found_command_span);
  std::filesystem::remove(trace_path);
}

TEST_F(CliTest, TraceFlagWithoutFileFails) {
  const auto result = run_cli({"list", "--trace"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("--trace"), std::string::npos);
}

TEST_F(CliTest, FailpointsFlagWithoutSpecFails) {
  const auto result = run_cli({"list", "--failpoints"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("--failpoints"), std::string::npos);
}

TEST_F(CliTest, FailpointsFlagRejectsMalformedSpec) {
  for (const char* bad : {"nonsense", "a=nth:0", "a=prob:2@1", "a=err:Nope"}) {
    const auto result = run_cli({"--failpoints", bad, "list"});
    EXPECT_EQ(result.exit_code, 1) << bad;
    EXPECT_NE(result.err.find("failpoints:"), std::string::npos) << bad;
  }
}

TEST_F(CliTest, FailpointsFlagWithUnmatchedSpecIsHarmless) {
  const auto result = run_cli({"--failpoints", "no.such.site=err:IoError",
                               "list"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("applications:"), std::string::npos);
}

TEST_F(CliTest, UsageMentionsFailpointsFlag) {
  const auto result = run_cli({"help"});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.out.find("--failpoints"), std::string::npos);
}

TEST_F(CliTest, BackendFlagPinsEveryKernelBackend) {
  const linalg::Backend before = linalg::active_backend();
  for (const char* name : {"naive", "blocked", "simd"}) {
    const auto result = run_cli({"--backend", name, "list"});
    EXPECT_EQ(result.exit_code, 0) << name << ": " << result.err;
    EXPECT_NE(result.out.find("applications:"), std::string::npos) << name;
  }
  // The override is scoped to the command: in-process callers see the
  // previous selection again once run() returns.
  EXPECT_EQ(linalg::active_backend(), before);
}

TEST_F(CliTest, BackendFlagRejectsUnknownName) {
  const auto result = run_cli({"--backend", "warp-drive", "list"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("backend"), std::string::npos);
}

TEST_F(CliTest, BackendFlagWithoutNameFails) {
  const auto result = run_cli({"list", "--backend"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("--backend"), std::string::npos);
}

TEST_F(CliTest, UsageMentionsBackendFlag) {
  const auto result = run_cli({"help"});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.out.find("--backend"), std::string::npos);
  EXPECT_NE(result.out.find("--f32"), std::string::npos);
}

TEST_F(CliTest, StatsDumpsMetricsRegistry) {
  const auto result = run_cli({"stats", "list"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  // The nested command ran...
  EXPECT_NE(result.out.find("applications:"), std::string::npos);
  // ...and the registry dump followed it.
  EXPECT_NE(result.out.find("metrics registry"), std::string::npos);
}

TEST_F(CliTest, StatsJsonExport) {
  const std::string json_path =
      (std::filesystem::temp_directory_path() / "dsml_cli_stats.json")
          .string();
  std::filesystem::remove(json_path);
  const auto result = run_cli({"stats", "--json", json_path, "list"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  ASSERT_TRUE(std::filesystem::exists(json_path));
  const json::Value doc = json::Value::parse_file(json_path);
  EXPECT_TRUE(doc.contains("counters"));
  EXPECT_TRUE(doc.contains("gauges"));
  EXPECT_TRUE(doc.contains("histograms"));
  std::filesystem::remove(json_path);
}

TEST_F(CliTest, MalformedCountFlagsFailWithTaxonomyErrors) {
  // Bare std::stoull used to let these crash with a raw std::invalid_argument
  // (or silently accept "3x" as 3); the checked parser names the flag.
  {
    const auto result = run_cli({"sweep", "--app", "applu", "--full", "abc"});
    EXPECT_EQ(result.exit_code, 1);
    EXPECT_NE(result.err.find("--full"), std::string::npos) << result.err;
    EXPECT_NE(result.err.find("non-negative integer"), std::string::npos);
  }
  {
    auto args = tiny_sweep_args();
    args.insert(args.begin(),
                {"train", "--app", "applu", "--rate", "0.02", "--model",
                 "LR-B", "--out", "/tmp/never_written.dsml"});
    args.insert(args.end(), {"--seed", "12monkeys"});
    const auto result = run_cli(args);
    EXPECT_EQ(result.exit_code, 1);
    EXPECT_NE(result.err.find("--seed"), std::string::npos) << result.err;
    EXPECT_FALSE(std::filesystem::exists("/tmp/never_written.dsml"));
  }
  {
    const auto result =
        run_cli({"predict", "--model", "whatever.dsml", "--top", "-3"});
    EXPECT_EQ(result.exit_code, 1);
    EXPECT_NE(result.err.find("--top"), std::string::npos) << result.err;
  }
}

TEST_F(CliTest, PredictCsvScoresExternalRows) {
  const auto tmp = std::filesystem::temp_directory_path();
  const std::string model_path = (tmp / "dsml_cli_csv_model.dsml").string();
  const std::string csv_path = (tmp / "dsml_cli_predict_rows.csv").string();

  auto train_args = tiny_sweep_args();
  train_args.insert(train_args.begin(),
                    {"train", "--app", "applu", "--rate", "0.02", "--model",
                     "LR-B", "--out", model_path});
  ASSERT_EQ(run_cli(train_args).exit_code, 0);

  write_design_csv(csv_path, 5);
  const auto result =
      run_cli({"predict", "--model", model_path, "--csv", csv_path});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("predicted cycles"), std::string::npos);
  EXPECT_NE(result.out.find("5 configurations"), std::string::npos)
      << result.out;

  std::filesystem::remove(model_path);
  std::filesystem::remove(csv_path);
}

TEST_F(CliTest, ServeAnswersRequestsAndSurvivesBadLines) {
  const auto tmp = std::filesystem::temp_directory_path();
  const std::string model_path = (tmp / "dsml_cli_serve_model.dsml").string();
  auto train_args = tiny_sweep_args();
  train_args.insert(train_args.begin(),
                    {"train", "--app", "applu", "--rate", "0.02", "--model",
                     "LR-B", "--out", model_path});
  ASSERT_EQ(run_cli(train_args).exit_code, 0);

  const std::string input =
      "{\"rows\": [" + design_row_json(0) + "," + design_row_json(7) + "]}\n"
      "this is not json\n"
      "{\"model\": \"nope\", \"rows\": [" + design_row_json(0) + "]}\n";
  const auto result =
      run_cli({"serve", "--models", "applu=" + model_path}, input);
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.err.find("serving 1 model(s)"), std::string::npos);

  std::istringstream lines(result.out);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  const json::Value good = json::Value::parse(line);
  EXPECT_TRUE(good.at("ok").as_bool());
  EXPECT_EQ(good.at("model").as_string(), "applu");
  EXPECT_EQ(good.at("predictions").items().size(), 2u);

  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_FALSE(json::Value::parse(line).at("ok").as_bool());

  ASSERT_TRUE(std::getline(lines, line));
  const json::Value unknown = json::Value::parse(line);
  EXPECT_FALSE(unknown.at("ok").as_bool());
  EXPECT_NE(unknown.at("error").as_string().find("nope"), std::string::npos);

  EXPECT_FALSE(std::getline(lines, line));  // exactly one line per request
  std::filesystem::remove(model_path);
}

TEST_F(CliTest, ServeF32FlagServesWithinErrorBudget) {
  const auto tmp = std::filesystem::temp_directory_path();
  const std::string model_path =
      (tmp / "dsml_cli_serve_f32_model.dsml").string();
  auto train_args = tiny_sweep_args();
  train_args.insert(train_args.begin(),
                    {"train", "--app", "applu", "--rate", "0.02", "--model",
                     "LR-B", "--out", model_path});
  ASSERT_EQ(run_cli(train_args).exit_code, 0);

  const std::string input =
      "{\"rows\": [" + design_row_json(0) + "," + design_row_json(7) + "]}\n";
  const auto via_double =
      run_cli({"serve", "--models", "applu=" + model_path}, input);
  const auto via_f32 =
      run_cli({"serve", "--f32", "--models", "applu=" + model_path}, input);
  ASSERT_EQ(via_double.exit_code, 0) << via_double.err;
  ASSERT_EQ(via_f32.exit_code, 0) << via_f32.err;
  EXPECT_NE(via_f32.err.find("[f32]"), std::string::npos);
  EXPECT_EQ(via_double.err.find("[f32]"), std::string::npos);

  const json::Value double_response =
      json::Value::parse(via_double.out.substr(0, via_double.out.find('\n')));
  const json::Value f32_response =
      json::Value::parse(via_f32.out.substr(0, via_f32.out.find('\n')));
  const auto& d = double_response.at("predictions").items();
  const auto& f = f32_response.at("predictions").items();
  ASSERT_EQ(d.size(), f.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    const double dv = d[i].as_number();
    const double fv = f[i].as_number();
    EXPECT_LE(std::abs(fv - dv), 1e-5 * std::max(std::abs(dv), 1e-12))
        << "row " << i;
  }
  std::filesystem::remove(model_path);
}

TEST_F(CliTest, ServeReportsPartialFailureUnderFailpoint) {
  const auto tmp = std::filesystem::temp_directory_path();
  const std::string model_path =
      (tmp / "dsml_cli_serve_fail_model.dsml").string();
  auto train_args = tiny_sweep_args();
  train_args.insert(train_args.begin(),
                    {"train", "--app", "applu", "--rate", "0.02", "--model",
                     "LR-B", "--out", model_path});
  ASSERT_EQ(run_cli(train_args).exit_code, 0);

  // Batch predict fails once, the degraded per-row retry then poisons the
  // first row: the response must carry the surviving prediction and name
  // the failed row, and the loop must keep serving the next request.
  const std::string input =
      "{\"rows\": [" + design_row_json(0) + "," + design_row_json(1) + "]}\n" +
      "{\"rows\": [" + design_row_json(2) + "]}\n";
  const auto result = run_cli(
      {"--failpoints",
       "engine.session.flush=nth:1,engine.session.row=nth:1", "serve",
       "--models", "applu=" + model_path},
      input);
  EXPECT_EQ(result.exit_code, 0) << result.err;

  std::istringstream lines(result.out);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  const json::Value partial = json::Value::parse(line);
  EXPECT_FALSE(partial.at("ok").as_bool());
  EXPECT_TRUE(partial.at("partial").as_bool());
  const auto& preds = partial.at("predictions").items();
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_TRUE(preds[0].is_null());
  EXPECT_FALSE(preds[1].is_null());
  ASSERT_EQ(partial.at("errors").items().size(), 1u);
  EXPECT_EQ(partial.at("errors").items()[0].at("row").as_number(), 0.0);

  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_TRUE(json::Value::parse(line).at("ok").as_bool());
  std::filesystem::remove(model_path);
}

TEST_F(CliTest, ServeRejectsDuplicateModelNames) {
  // `--models a=x,a=y` used to silently re-register `a` with whichever file
  // parsed last; now the duplicate is rejected before any artifact loads
  // (so the paths do not need to exist).
  const auto result = run_cli(
      {"serve", "--models", "a=/nonexistent/x.dsml,a=/nonexistent/y.dsml"},
      "");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("'a' more than once"), std::string::npos)
      << result.err;
}

TEST_F(CliTest, ServeMissingRowsArrayIsAClearError) {
  const auto tmp = std::filesystem::temp_directory_path();
  const std::string model_path =
      (tmp / "dsml_cli_serve_rows_model.dsml").string();
  auto train_args = tiny_sweep_args();
  train_args.insert(train_args.begin(),
                    {"train", "--app", "applu", "--rate", "0.02", "--model",
                     "LR-B", "--out", model_path});
  ASSERT_EQ(run_cli(train_args).exit_code, 0);

  const std::string input = "{\"model\": \"applu\"}\n"
                            "{\"model\": \"applu\", \"rows\": 3}\n"
                            "{\"rows\": []}\n";
  const auto result =
      run_cli({"serve", "--models", "applu=" + model_path}, input);
  EXPECT_EQ(result.exit_code, 0) << result.err;
  std::istringstream lines(result.out);
  std::string line;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(std::getline(lines, line));
    const json::Value response = json::Value::parse(line);
    EXPECT_FALSE(response.at("ok").as_bool());
    EXPECT_NE(response.at("error").as_string().find("\"rows\" array"),
              std::string::npos)
        << line;
    EXPECT_EQ(response.at("error_type").as_string(), "InvalidArgument");
  }
  // A present-but-empty rows array is a fine request, not an error.
  ASSERT_TRUE(std::getline(lines, line));
  const json::Value empty = json::Value::parse(line);
  EXPECT_TRUE(empty.at("ok").as_bool());
  EXPECT_EQ(empty.at("predictions").items().size(), 0u);
  EXPECT_NE(result.err.find("2 error(s)"), std::string::npos) << result.err;
  std::filesystem::remove(model_path);
}

TEST_F(CliTest, ServeListenRespondsByteIdenticalToStdin) {
  const auto tmp = std::filesystem::temp_directory_path();
  const std::string model_path =
      (tmp / "dsml_cli_serve_listen_model.dsml").string();
  auto train_args = tiny_sweep_args();
  train_args.insert(train_args.begin(),
                    {"train", "--app", "applu", "--rate", "0.02", "--model",
                     "LR-B", "--out", model_path});
  ASSERT_EQ(run_cli(train_args).exit_code, 0);

  const std::vector<std::string> requests = {
      "{\"rows\": [" + design_row_json(0) + "," + design_row_json(7) + "]}",
      "this is not json",
      "{\"model\": \"nope\", \"rows\": []}",
      "{\"rows\": 7}",
  };
  std::string input;
  for (const std::string& r : requests) input += r + "\n";
  const auto via_stdin =
      run_cli({"serve", "--models", "applu=" + model_path}, input);
  ASSERT_EQ(via_stdin.exit_code, 0) << via_stdin.err;

  // The TCP front-end dispatches the same lines to the same ServeHandler
  // code over the entry the stdin run just loaded (no reload, so the
  // version in the responses is identical too): the response stream must
  // match byte for byte.
  engine::ServeOptions options;
  options.default_model = "applu";
  engine::ServeHandler handler(engine::ModelRegistry::global(), options);
  net::ServerOptions server_options;
  server_options.bind_address = "127.0.0.1";
  server_options.port = 0;
  net::Server server(server_options, [&](std::string_view line) {
    return handler.handle(line);
  });
  std::thread runner([&] { server.run(); });
  std::string via_tcp;
  {
    net::LineClient client("127.0.0.1", server.port());
    for (const std::string& r : requests) client.send_line(r);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      via_tcp += client.recv_line() + "\n";
    }
  }
  server.request_stop();
  runner.join();
  EXPECT_EQ(via_tcp, via_stdin.out);
  std::filesystem::remove(model_path);
}

TEST_F(CliTest, LoadgenRequiresConnectEndpoint) {
  const auto missing = run_cli({"loadgen"});
  EXPECT_EQ(missing.exit_code, 1);
  EXPECT_NE(missing.err.find("--connect"), std::string::npos) << missing.err;

  const auto malformed = run_cli({"loadgen", "--connect", "nocolon"});
  EXPECT_EQ(malformed.exit_code, 1);
  EXPECT_NE(malformed.err.find("host:port"), std::string::npos)
      << malformed.err;

  const auto bad_port = run_cli({"loadgen", "--connect", "localhost:0"});
  EXPECT_EQ(bad_port.exit_code, 1);
  EXPECT_NE(bad_port.err.find("port"), std::string::npos) << bad_port.err;
}

TEST_F(CliTest, LoadgenDrivesAServerAndGatesOnItsOwnReport) {
  const auto tmp = std::filesystem::temp_directory_path();
  const std::string model_path =
      (tmp / "dsml_cli_loadgen_model.dsml").string();
  const std::string report_path =
      (tmp / "dsml_cli_loadgen_report.json").string();
  auto train_args = tiny_sweep_args();
  train_args.insert(train_args.begin(),
                    {"train", "--app", "applu", "--rate", "0.02", "--model",
                     "LR-B", "--out", model_path});
  ASSERT_EQ(run_cli(train_args).exit_code, 0);

  engine::ModelRegistry& registry = engine::ModelRegistry::global();
  registry.load_file("loadgen-target", model_path,
                     engine::design_space_schema());
  engine::ServeOptions options;
  options.default_model = "loadgen-target";
  engine::ServeHandler handler(registry, options);
  net::ServerOptions server_options;
  server_options.bind_address = "127.0.0.1";
  server_options.port = 0;
  net::Server server(server_options, [&](std::string_view line) {
    return handler.handle(line);
  });
  std::thread runner([&] { server.run(); });

  const std::string endpoint =
      "127.0.0.1:" + std::to_string(server.port());
  const auto first = run_cli({"loadgen", "--connect", endpoint,
                              "--connections", "4", "--requests", "4",
                              "--rows", "2", "--json", report_path});
  EXPECT_EQ(first.exit_code, 0) << first.err;
  EXPECT_NE(first.out.find("16 ok, 0 error(s)"), std::string::npos)
      << first.out;
  EXPECT_NE(first.out.find("latency p50"), std::string::npos) << first.out;

  // A second identical run gated against the first run's report: the
  // deterministic fields (config, ok/error totals) must match exactly.
  const auto gated = run_cli({"loadgen", "--connect", endpoint,
                              "--connections", "4", "--requests", "4",
                              "--rows", "2", "--check", report_path});
  EXPECT_EQ(gated.exit_code, 0) << gated.err;
  EXPECT_NE(gated.out.find("deterministic fields match"), std::string::npos)
      << gated.out;

  // A mismatched config must fail the gate.
  const auto mismatched = run_cli({"loadgen", "--connect", endpoint,
                                   "--connections", "2", "--requests", "4",
                                   "--rows", "2", "--check", report_path});
  EXPECT_EQ(mismatched.exit_code, 1);
  EXPECT_NE(mismatched.err.find("config.connections"), std::string::npos)
      << mismatched.err;

  server.request_stop();
  runner.join();
  EXPECT_EQ(handler.summary().errors, 0u);
  std::filesystem::remove(model_path);
  std::filesystem::remove(report_path);
}

TEST_F(CliTest, BareFastFlagIsBoolean) {
  // `--fast` with no value parses as "--fast 1"; the sweep cache dir is
  // throwaway so the fast bench's tiny workload stays quick. We only check
  // it is accepted (exit code depends on perf, so just require it ran).
  const auto result = run_cli({"help"});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.out.find("--trace F"), std::string::npos);
  EXPECT_NE(result.out.find("stats"), std::string::npos);
}

}  // namespace
}  // namespace dsml::cli
