// End-to-end integration tests of the paper's two experiment pipelines at
// reduced scale: trace synthesis → SimPoint → simulator sweep → surrogate
// modelling → error measurement, and SPEC-database generation → year split →
// chronological prediction.
#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "dse/chronological.hpp"
#include "dse/sampled.hpp"
#include "dse/sweep.hpp"
#include "ml/metrics.hpp"

namespace dsml {
namespace {

const dse::SweepResult& shared_sweep(const std::string& app) {
  static std::map<std::string, dse::SweepResult> cache;
  auto it = cache.find(app);
  if (it == cache.end()) {
    // Long enough for the multi-MB working-set tiers to warm (the cache-size
    // levers that give mcf its wide range need reuse to materialise).
    dse::SweepOptions opt;
    opt.full_trace_instructions = 400000;
    opt.interval_instructions = 40000;
    opt.max_clusters = 3;
    opt.use_cache = false;
    it = cache.emplace(app, dse::run_design_space_sweep(app, opt)).first;
  }
  return it->second;
}

TEST(Integration, SampledDseNnBeatsLinearRegression) {
  // The paper's central sampled-DSE claim (§4.2): a neural network trained
  // on a small random sample predicts the whole space better than linear
  // regression, because the cycle response is nonlinear in the parameters.
  const data::Dataset full = dse::sweep_dataset(shared_sweep("mcf"));
  dse::SampledDseOptions opt;
  opt.sampling_rates = {0.03};
  opt.model_names = {"LR-B", "NN-E"};
  opt.zoo.nn_epoch_scale = 0.5;
  const auto result = dse::run_sampled_dse(full, "mcf", opt);
  const double nn = result.run("NN-E", 0.03).true_error;
  const double lr = result.run("LR-B", 0.03).true_error;
  EXPECT_LT(nn, lr);
}

TEST(Integration, SamplingMoreDataHelpsNn) {
  const data::Dataset full = dse::sweep_dataset(shared_sweep("mcf"));
  dse::SampledDseOptions opt;
  opt.sampling_rates = {0.01, 0.05};
  opt.model_names = {"NN-E"};
  opt.zoo.nn_epoch_scale = 0.5;
  const auto result = dse::run_sampled_dse(full, "mcf", opt);
  // 5x the training data should not be substantially worse (the paper notes
  // occasional non-monotonicity from unlucky samples, hence the margin).
  EXPECT_LT(result.run("NN-E", 0.05).true_error,
            result.run("NN-E", 0.01).true_error + 2.0);
}

TEST(Integration, NnPredictsUnsampledConfigsWithin10Percent) {
  const data::Dataset full = dse::sweep_dataset(shared_sweep("applu"));
  dse::SampledDseOptions opt;
  opt.sampling_rates = {0.05};
  opt.model_names = {"NN-E"};
  const auto result = dse::run_sampled_dse(full, "applu", opt);
  EXPECT_LT(result.run("NN-E", 0.05).true_error, 10.0);
}

TEST(Integration, DesignSpaceRangeOrderingMatchesPaper) {
  // mcf (pointer chaser) must show a wider configuration range than applu
  // (compute bound) — the §4.1 characterisation that motivates the study.
  const auto& mcf = shared_sweep("mcf");
  const auto& applu = shared_sweep("applu");
  EXPECT_GT(stats::range_ratio(mcf.cycles), stats::range_ratio(applu.cycles));
}

TEST(Integration, ChronologicalLrBeatsNn) {
  // §4.3: linear regression generalises across model years; networks
  // overfit the training year.
  dse::ChronologicalOptions opt;
  opt.model_names = {"LR-E", "NN-E"};
  opt.zoo.nn_epoch_scale = 0.5;
  const auto result = dse::run_chronological(specdata::Family::kXeon, opt);
  ASSERT_EQ(result.models.size(), 2u);
  const double lr = result.models[0].error.mean;
  const double nn = result.models[1].error.mean;
  EXPECT_LT(lr, nn);
  EXPECT_LT(lr, 4.0);
}

TEST(Integration, ProcessorSpeedDominatesImportance) {
  // §4.4: processor speed is the dominant predictor for the Opteron models.
  dse::ChronologicalOptions opt;
  opt.model_names = {"LR-S", "NN-M"};
  opt.zoo.nn_epoch_scale = 0.5;
  const auto result = dse::run_chronological(specdata::Family::kOpteron, opt);
  ASSERT_FALSE(result.lr_importance.empty());
  EXPECT_EQ(result.lr_importance.front().name, "processor_speed_mhz");
  ASSERT_FALSE(result.nn_importance.empty());
  // For the NN the speed must rank among the top three factors.
  bool in_top3 = false;
  for (std::size_t i = 0; i < std::min<std::size_t>(3, result.nn_importance.size());
       ++i) {
    in_top3 |= result.nn_importance[i].name == "processor_speed_mhz";
  }
  EXPECT_TRUE(in_top3);
}

TEST(Integration, SelectEstimateTracksBestModel) {
  const data::Dataset full = dse::sweep_dataset(shared_sweep("applu"));
  dse::SampledDseOptions opt;
  opt.sampling_rates = {0.04};
  opt.model_names = {"LR-B", "NN-S"};
  opt.zoo.nn_epoch_scale = 0.5;
  const auto result = dse::run_sampled_dse(full, "applu", opt);
  ASSERT_EQ(result.select.size(), 1u);
  // The selected model's true error should not exceed the worst candidate's.
  double worst = 0.0;
  for (const auto& run : result.runs) worst = std::max(worst, run.true_error);
  EXPECT_LE(result.select[0].true_error, worst);
}

}  // namespace
}  // namespace dsml
