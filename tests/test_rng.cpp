#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace dsml {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(5);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LT(rng.below(7), 7u);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BelowApproximatelyUniform) {
  Rng rng(10);
  std::vector<int> counts(10, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[rng.below(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, kN / 10, kN / 100);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.range(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceRate) {
  Rng rng(13);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, GaussianMoments) {
  Rng rng(14);
  double sum = 0.0;
  double sumsq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sumsq / kN, 1.0, 0.03);
}

TEST(Rng, GaussianShifted) {
  Rng rng(15);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.1);
}

TEST(Rng, LognormalPositive) {
  Rng rng(16);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleChangesOrderEventually) {
  Rng rng(18);
  std::vector<int> v(32);
  for (int i = 0; i < 32; ++i) v[i] = i;
  const auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  const auto sample = rng.sample_without_replacement(100, 30);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(20);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(21);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), InvalidArgument);
}

TEST(Rng, WeightedHonorsWeights) {
  Rng rng(22);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.weighted(weights), 1u);
  }
}

TEST(Rng, WeightedProportions) {
  Rng rng(23);
  std::vector<double> weights = {1.0, 3.0};
  int counts[2] = {0, 0};
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) ++counts[rng.weighted(weights)];
  EXPECT_NEAR(static_cast<double>(counts[1]) / kN, 0.75, 0.02);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng rng(24);
  Rng a = rng.split(1);
  Rng b = rng.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UsableWithStdDistributions) {
  Rng rng(25);
  // Satisfies UniformRandomBitGenerator.
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace dsml
