// Engine-layer tests: schema fingerprints, the model registry, micro-batching
// inference sessions (including the bit-identity determinism contract and
// concurrent access under DSML_THREADS=4 — this suite carries the tsan
// label), fit_and_score failure capture, and the design-space cold-start
// cache.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/metrics.hpp"
#include "data/column.hpp"
#include "data/dataset.hpp"
#include "engine/design_space.hpp"
#include "ml/fit_score.hpp"
#include "engine/registry.hpp"
#include "engine/schema.hpp"
#include "engine/serve.hpp"
#include "engine/session.hpp"
#include "ml/model_zoo.hpp"

namespace dsml::engine {
namespace {

// A tiny mixed-kind training set (numeric + flag + ordered categorical) so
// fits stay instant while still exercising the full Encoder path.
data::Dataset make_train(std::size_t n) {
  std::vector<double> size_kb, latency, target;
  std::vector<bool> wide;
  std::vector<std::string> predictor;
  const std::vector<std::string> levels = {"weak", "medium", "strong"};
  for (std::size_t i = 0; i < n; ++i) {
    const double s = static_cast<double>(8 << (i % 4));
    const double l = 1.0 + static_cast<double>(i % 5);
    const bool w = (i % 2) == 0;
    const std::size_t p = i % levels.size();
    size_kb.push_back(s);
    latency.push_back(l);
    wide.push_back(w);
    predictor.push_back(levels[p]);
    target.push_back(1000.0 - 3.0 * s + 40.0 * l - (w ? 25.0 : 0.0) -
                     10.0 * static_cast<double>(p));
  }
  data::Dataset d;
  d.add_feature(data::Column::numeric("size_kb", std::move(size_kb)));
  d.add_feature(data::Column::numeric("latency", std::move(latency)));
  d.add_feature(data::Column::flag("wide", std::move(wide)));
  d.add_feature(data::Column::categorical_with_levels(
      "predictor", levels, std::move(predictor), /*ordered=*/true));
  d.set_target("cycles", std::move(target));
  return d;
}

std::shared_ptr<const ml::Regressor> fit_model(const data::Dataset& train,
                                               const std::string& name) {
  std::unique_ptr<ml::Regressor> model = ml::make_model(name).make();
  model->fit(train);
  return std::shared_ptr<const ml::Regressor>(std::move(model));
}

// ---------------------------------------------------------------- schema --

TEST(Schema, FingerprintIsStableAndOrderSensitive) {
  const data::Dataset train = make_train(24);
  const Schema a = Schema::of(train);
  const Schema b = Schema::of(make_train(12));  // same layout, other rows
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.size(), 4u);
  EXPECT_TRUE(a.matches(train));
  EXPECT_EQ(a.mismatch(train), "");

  data::Dataset reordered;
  reordered.add_feature(data::Column::numeric("latency", {1.0}));
  reordered.add_feature(data::Column::numeric("size_kb", {8.0}));
  reordered.add_feature(data::Column::flag("wide", {true}));
  reordered.add_feature(data::Column::categorical_with_levels(
      "predictor", {"weak", "medium", "strong"}, {"weak"}, true));
  EXPECT_FALSE(a.matches(reordered));
  EXPECT_NE(a.mismatch(reordered), "");
  EXPECT_NE(a.fingerprint(), Schema::of(reordered).fingerprint());
}

TEST(Schema, ProbeRowMatchesSchema) {
  const Schema schema = Schema::of(make_train(6));
  const data::Dataset probe = schema.probe_row();
  EXPECT_EQ(probe.n_rows(), 1u);
  EXPECT_TRUE(schema.matches(probe));
}

TEST(Schema, DatasetFromRowsValidatesCells) {
  const Schema schema = Schema::of(make_train(6));
  const data::Dataset good = schema.dataset_from_rows(
      {{"16", "2.5", "true", "medium"}, {"8", "1", "0", "weak"}});
  EXPECT_EQ(good.n_rows(), 2u);
  EXPECT_TRUE(schema.matches(good));
  EXPECT_DOUBLE_EQ(good.feature("latency").numeric_at(0), 2.5);
  EXPECT_EQ(good.feature("predictor").label_at(1), "weak");

  EXPECT_THROW(schema.dataset_from_rows({{"oops", "1", "0", "weak"}}),
               InvalidArgument);
  EXPECT_THROW(schema.dataset_from_rows({{"1", "1", "maybe", "weak"}}),
               InvalidArgument);
  EXPECT_THROW(schema.dataset_from_rows({{"1", "1", "0", "heroic"}}),
               InvalidArgument);
  EXPECT_THROW(schema.dataset_from_rows({{"1", "1", "0"}}), InvalidArgument);
}

// -------------------------------------------------------------- registry --

TEST(Registry, RegisterLookupAndReloadVersioning) {
  const data::Dataset train = make_train(24);
  const Schema schema = Schema::of(train);
  ModelRegistry registry;
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.find("gcc"), nullptr);
  EXPECT_THROW(registry.get("gcc"), StateError);

  EXPECT_EQ(registry.register_model("gcc", fit_model(train, "LR-B"), schema,
                                    "test"),
            1u);
  const auto first = registry.get("gcc");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->version, 1u);
  EXPECT_EQ(first->source, "test");
  EXPECT_EQ(first->schema.fingerprint(), schema.fingerprint());

  // Re-registering swaps the snapshot and bumps the version; the handed-out
  // entry is immutable and keeps working.
  EXPECT_EQ(registry.register_model("gcc", fit_model(train, "LR-E"), schema),
            2u);
  EXPECT_EQ(registry.get("gcc")->version, 2u);
  EXPECT_EQ(first->version, 1u);
  EXPECT_EQ(first->model->predict(train).size(), train.n_rows());

  registry.register_model("mcf", fit_model(train, "LR-B"), schema);
  EXPECT_EQ(registry.names(), (std::vector<std::string>{"gcc", "mcf"}));
  EXPECT_EQ(registry.size(), 2u);
  registry.clear();
  EXPECT_EQ(registry.size(), 0u);
}

TEST(Registry, RejectsUnfittedAndSchemaMismatchedModels) {
  const data::Dataset train = make_train(24);
  const Schema schema = Schema::of(train);
  ModelRegistry registry;

  EXPECT_THROW(registry.register_model("null", nullptr, schema),
               InvalidArgument);
  EXPECT_THROW(
      registry.register_model(
          "unfitted",
          std::shared_ptr<const ml::Regressor>(ml::make_model("LR-B").make()),
          schema),
      InvalidArgument);

  // A model fitted on a *wider* layout must fail the registration probe —
  // predicting the narrow schema's probe row cannot satisfy its encoder —
  // rather than serve garbage later.
  data::Dataset narrow;
  narrow.add_feature(data::Column::numeric("alpha", {1.0, 2.0, 3.0, 4.0}));
  narrow.add_feature(data::Column::numeric("beta", {2.0, 4.0, 6.0, 8.0}));
  narrow.set_target("y", {1.0, 2.0, 3.0, 4.0});
  EXPECT_THROW(registry.register_model("mismatch", fit_model(train, "LR-B"),
                                       Schema::of(narrow)),
               InvalidArgument);
  EXPECT_EQ(registry.size(), 0u);
}

// --------------------------------------------------------------- session --

TEST(Session, BatchedPredictionsBitIdenticalToDirectPredict) {
  const data::Dataset train = make_train(64);
  ModelRegistry registry;
  const auto model = fit_model(train, "NN-E");
  registry.register_model("nn", model, Schema::of(train));

  InferenceSession session(registry, "nn");
  const std::vector<double> via_session = session.predict(train);
  const std::vector<double> direct = model->predict(train);
  ASSERT_EQ(via_session.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    // Bit-identical, not approximately equal: the determinism contract.
    EXPECT_EQ(via_session[i], direct[i]) << "row " << i;
  }
}

TEST(Session, RejectsSchemaMismatchedRequests) {
  const data::Dataset train = make_train(16);
  ModelRegistry registry;
  registry.register_model("m", fit_model(train, "LR-B"), Schema::of(train));
  InferenceSession session(registry, "m");

  data::Dataset other;
  other.add_feature(data::Column::numeric("alpha", {1.0}));
  EXPECT_THROW(session.predict(other), InvalidArgument);
  EXPECT_THROW(InferenceSession(registry, "absent"), StateError);
}

TEST(Session, EnforcesQueueBound) {
  const data::Dataset train = make_train(16);
  ModelRegistry registry;
  registry.register_model("m", fit_model(train, "LR-B"), Schema::of(train));
  SessionOptions options;
  options.max_batch_rows = 8;
  options.max_queue_rows = 8;
  InferenceSession session(registry, "m", options);
  EXPECT_THROW(session.predict(train), StateError);  // 16 rows > bound 8
  EXPECT_EQ(session.stats().rejected, 1u);
  const std::vector<std::size_t> few = {0, 1, 2, 3};
  EXPECT_EQ(session.predict(train.select_rows(few)).size(), 4u);
}

TEST(Session, FailedBatchDegradesToPerRowRetry) {
  const data::Dataset train = make_train(12);
  ModelRegistry registry;
  registry.register_model("m", fit_model(train, "LR-B"), Schema::of(train));
  InferenceSession session(registry, "m");

  // First flush throws; every row then succeeds individually, so the caller
  // still gets a full answer and only the stats betray the degradation.
  {
    failpoint::ScopedFailpoints arm("engine.session.flush=nth:1");
    const BatchOutcome outcome = session.predict_detailed(train);
    EXPECT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome.degraded);
    EXPECT_EQ(outcome.values.size(), train.n_rows());
  }
  EXPECT_EQ(session.stats().degraded, 1u);

  // Batch fails AND one row keeps failing: the poisoned row fails alone,
  // its batch neighbours keep their predictions.
  {
    failpoint::ScopedFailpoints arm(
        "engine.session.flush=nth:1,engine.session.row=nth:3");
    const BatchOutcome outcome = session.predict_detailed(train);
    EXPECT_FALSE(outcome.ok());
    EXPECT_TRUE(outcome.degraded);
    ASSERT_EQ(outcome.failed_rows.size(), 1u);
    EXPECT_EQ(outcome.failed_rows[0], 2u);  // 3rd hit = row index 2
    ASSERT_EQ(outcome.row_errors.size(), 1u);
    EXPECT_TRUE(std::isnan(outcome.values[2]));
    EXPECT_FALSE(std::isnan(outcome.values[1]));
  }

  // The throwing predict() surfaces the first row failure as an exception
  // (fresh triggers: the nth counters above are already consumed).
  {
    failpoint::ScopedFailpoints arm(
        "engine.session.flush=nth:1,engine.session.row=nth:1");
    EXPECT_THROW(session.predict(train), NumericalError);
  }
}

// A fitted Regressor outside the LR/NN families: make_f32_predictor returns
// nullptr for it, so an f32 session must silently serve double.
class MeanModel final : public ml::Regressor {
 public:
  void fit(const data::Dataset& train) override {
    double sum = 0.0;
    for (double v : train.target()) sum += v;
    mean_ = sum / static_cast<double>(train.n_rows());
    fitted_ = true;
  }
  std::vector<double> predict(const data::Dataset& dataset) const override {
    return std::vector<double>(dataset.n_rows(), mean_);
  }
  std::string name() const override { return "mean"; }
  bool fitted() const noexcept override { return fitted_; }

 private:
  double mean_ = 0.0;
  bool fitted_ = false;
};

TEST(Registry, BuildsF32SnapshotForSupportedModels) {
  const data::Dataset train = make_train(24);
  ModelRegistry registry;
  registry.register_model("lr", fit_model(train, "LR-B"), Schema::of(train));
  registry.register_model("nn", fit_model(train, "NN-E"), Schema::of(train));
  EXPECT_NE(registry.get("lr")->f32, nullptr);
  EXPECT_NE(registry.get("nn")->f32, nullptr);

  auto mean = std::make_shared<MeanModel>();
  mean->fit(train);
  registry.register_model("mean", mean, Schema::of(train));
  EXPECT_EQ(registry.get("mean")->f32, nullptr);
}

TEST(Session, F32SessionMatchesSnapshotAndStaysInBudget) {
  const data::Dataset train = make_train(64);
  ModelRegistry registry;
  const auto model = fit_model(train, "LR-B");
  registry.register_model("m", model, Schema::of(train));

  SessionOptions options;
  options.use_f32 = true;
  InferenceSession session(registry, "m", options);
  const std::vector<double> via_session = session.predict(train);

  // The session adds batching, never arithmetic: bit-identical to the
  // snapshot's own predict, within the 1e-5 budget of the double path.
  const std::vector<double> direct_f32 =
      registry.get("m")->f32->predict(train);
  const std::vector<double> direct_double = model->predict(train);
  ASSERT_EQ(via_session.size(), direct_f32.size());
  for (std::size_t i = 0; i < via_session.size(); ++i) {
    EXPECT_EQ(via_session[i], direct_f32[i]) << "row " << i;
    EXPECT_LE(std::abs(via_session[i] - direct_double[i]),
              1e-5 * std::max(std::abs(direct_double[i]), 1e-12))
        << "row " << i;
  }
}

TEST(Session, F32RequestFallsBackToDoubleWithoutSnapshot) {
  const data::Dataset train = make_train(16);
  ModelRegistry registry;
  auto mean = std::make_shared<MeanModel>();
  mean->fit(train);
  registry.register_model("mean", mean, Schema::of(train));

  SessionOptions options;
  options.use_f32 = true;
  InferenceSession session(registry, "mean", options);
  const std::vector<double> via_session = session.predict(train);
  const std::vector<double> direct = mean->predict(train);
  ASSERT_EQ(via_session.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(via_session[i], direct[i]) << "row " << i;  // double exactly
  }
}

TEST(Session, DegradedRowsUseTheDoubleModelEvenInF32Sessions) {
  const data::Dataset train = make_train(12);
  ModelRegistry registry;
  const auto model = fit_model(train, "LR-B");
  registry.register_model("m", model, Schema::of(train));

  SessionOptions options;
  options.use_f32 = true;
  InferenceSession session(registry, "m", options);
  failpoint::ScopedFailpoints arm("engine.session.flush=nth:1");
  const BatchOutcome outcome = session.predict_detailed(train);
  EXPECT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.degraded);
  const std::vector<double> direct_double = model->predict(train);
  ASSERT_EQ(outcome.values.size(), direct_double.size());
  for (std::size_t i = 0; i < direct_double.size(); ++i) {
    // Per-row retry is the double path exactly, not the f32 snapshot.
    EXPECT_EQ(outcome.values[i], direct_double[i]) << "row " << i;
  }
}

TEST(Session, ConcurrentRequestsCoalesceAndStayBitIdentical) {
  // The tsan-label workhorse: many threads share one session against one
  // registry entry; whatever batch compositions the leader/follower protocol
  // produces, every thread must see exactly the direct per-slice answer.
  const data::Dataset train = make_train(96);
  ModelRegistry registry;
  const auto model = fit_model(train, "NN-E");
  registry.register_model("nn", model, Schema::of(train));
  InferenceSession session(registry, "nn");

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kRounds = 8;
  std::vector<data::Dataset> slices;
  std::vector<std::vector<double>> expected;
  for (std::size_t t = 0; t < kThreads; ++t) {
    std::vector<std::size_t> rows;
    for (std::size_t r = t; r < train.n_rows(); r += kThreads) {
      rows.push_back(r);
    }
    slices.push_back(train.select_rows(rows));
    expected.push_back(model->predict(slices.back()));
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t round = 0; round < kRounds; ++round) {
        const std::vector<double> got = session.predict(slices[t]);
        if (got != expected[t]) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  const SessionStats stats = session.stats();
  EXPECT_EQ(stats.rows, kThreads * kRounds * (train.n_rows() / kThreads));
  EXPECT_GE(stats.batches, 1u);
}

TEST(Session, ConcurrentSessionsAgainstOneRegistry) {
  // Two sessions on different names plus a concurrent re-registration of a
  // third name: registry snapshots must stay coherent under readers.
  const data::Dataset train = make_train(48);
  ModelRegistry registry;
  const auto lr = fit_model(train, "LR-B");
  const auto nn = fit_model(train, "NN-E");
  registry.register_model("lr", lr, Schema::of(train));
  registry.register_model("nn", nn, Schema::of(train));
  const std::vector<double> want_lr = lr->predict(train);
  const std::vector<double> want_nn = nn->predict(train);

  InferenceSession lr_session(registry, "lr");
  InferenceSession nn_session(registry, "nn");
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 6; ++i) {
        if (lr_session.predict(train) != want_lr) mismatches.fetch_add(1);
      }
    });
    threads.emplace_back([&] {
      for (int i = 0; i < 6; ++i) {
        if (nn_session.predict(train) != want_nn) mismatches.fetch_add(1);
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 6; ++i) {
      registry.register_model("swap", fit_model(train, "LR-E"),
                              Schema::of(train));
    }
  });
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(registry.get("swap")->version, 6u);
}

// ----------------------------------------------------------- fit & score --

TEST(FitScore, RunsEveryRequestedStage) {
  const data::Dataset train = make_train(48);
  const data::Dataset score = make_train(12);
  FitScoreRequest request;
  request.model = ml::make_model("LR-B");
  request.train = &train;
  request.estimate = true;
  request.validation.repeats = 2;
  request.score = &score;
  const FitScoreResult cell = fit_and_score(request);
  ASSERT_TRUE(cell.ok());
  EXPECT_EQ(cell.name, "LR-B");
  ASSERT_NE(cell.model, nullptr);
  EXPECT_TRUE(cell.model->fitted());
  EXPECT_EQ(cell.estimate.folds.size(), 2u);  // one fold MAPE per repeat
  EXPECT_EQ(cell.predictions.size(), score.n_rows());
  EXPECT_GE(cell.fit_seconds, 0.0);
}

TEST(FitScore, CapturesFailuresAsRecordsInsteadOfThrowing) {
  const data::Dataset train = make_train(24);
  FitScoreRequest request;
  request.model = ml::make_model("LR-B");
  request.train = &train;
  request.failpoint = "engine.test.cell";
  failpoint::ScopedFailpoints arm("engine.test.cell=err:IoError");
  const FitScoreResult cell = fit_and_score(request);
  EXPECT_FALSE(cell.ok());
  ASSERT_TRUE(cell.failure.has_value());
  EXPECT_EQ(cell.failure->name, "LR-B");
  EXPECT_EQ(cell.failure->error_type, "IoError");
  EXPECT_EQ(cell.model, nullptr);       // no half-trained artifact leaks
  EXPECT_TRUE(cell.predictions.empty());
}

TEST(FitScore, NullTrainIsAContractViolation) {
  FitScoreRequest request;
  request.model = ml::make_model("LR-B");
  EXPECT_THROW(fit_and_score(request), InvalidArgument);
}

// ------------------------------------------------------------ cold start --

TEST(DesignSpace, BuiltOncePerProcess) {
  metrics::Counter& cold = metrics::counter("engine.predict.cold_start");
  const data::Dataset& first = design_space_dataset();
  const std::uint64_t after_first = cold.value();
  EXPECT_GE(after_first, 1u);
  const data::Dataset& again = design_space_dataset();
  EXPECT_EQ(&first, &again);                    // same cached object
  EXPECT_EQ(cold.value(), after_first);         // no second build
  EXPECT_EQ(first.n_rows(), sim::kDesignSpaceSize);
  EXPECT_TRUE(design_space_schema().matches(first));
  EXPECT_EQ(design_space_configs().size(), sim::kDesignSpaceSize);
}

// ------------------------------------------------------------------ serve --

/// A request row in this suite's make_train schema, as a serve-protocol
/// JSON object.
std::string train_row_json() {
  return R"({"size_kb": 16, "latency": 2, "wide": true, "predictor": "medium"})";
}

ServeHandler make_handler(ModelRegistry& registry) {
  const data::Dataset train = make_train(24);
  registry.register_model("m", fit_model(train, "LR-B"), Schema::of(train));
  ServeOptions options;
  options.default_model = "m";
  return ServeHandler(registry, options);
}

TEST(Serve, ZeroRowRequestAnswersEmptyPredictions) {
  ModelRegistry registry;
  ServeHandler handler = make_handler(registry);
  const std::string response = handler.handle(R"({"rows": []})");
  EXPECT_EQ(response,
            "{\"ok\":true,\"model\":\"m\",\"version\":1,\"predictions\":[]}\n");
  const ServeSummary summary = handler.summary();
  EXPECT_EQ(summary.requests, 1u);
  EXPECT_EQ(summary.rows, 0u);
  EXPECT_EQ(summary.errors, 0u);
}

TEST(Serve, MissingRowsIsAClearInvalidArgument) {
  ModelRegistry registry;
  ServeHandler handler = make_handler(registry);
  // Missing and non-array "rows" must surface the protocol contract, not a
  // raw JSON-accessor error.
  const std::vector<std::string> bad_requests = {
      R"({"model": "m"})", R"({"rows": {"not": "an array"}})",
      R"({"rows": 7})"};
  for (const std::string& request : bad_requests) {
    const std::string response = handler.handle(request);
    EXPECT_NE(response.find("request needs a \\\"rows\\\" array"),
              std::string::npos)
        << response;
    EXPECT_NE(response.find("InvalidArgument"), std::string::npos) << response;
  }
  EXPECT_EQ(handler.summary().errors, 3u);
}

TEST(Serve, BlankLinesAreSkippedNotAnswered) {
  ModelRegistry registry;
  ServeHandler handler = make_handler(registry);
  EXPECT_EQ(handler.handle(""), "");
  EXPECT_EQ(handler.handle("   \t"), "");
  EXPECT_EQ(handler.summary().requests, 0u);
}

TEST(Serve, CrlfTerminatedLinesParse) {
  // The stdin loop hands getline output to the handler with the \r still
  // attached; the JSON parser treats it as whitespace. Pin that contract —
  // the TCP front-end strips \r itself, so both transports accept CRLF.
  ModelRegistry registry;
  ServeHandler handler = make_handler(registry);
  const std::string response =
      handler.handle("{\"rows\": [" + train_row_json() + "]}\r");
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;
  EXPECT_EQ(handler.summary().rows, 1u);
}

TEST(Serve, RequestLargerThanQueueFailsAloneLoopKeepsServing) {
  ModelRegistry registry;
  const data::Dataset train = make_train(24);
  registry.register_model("m", fit_model(train, "LR-B"), Schema::of(train));
  ServeOptions options;
  options.default_model = "m";
  options.session.max_batch_rows = 2;
  options.session.max_queue_rows = 4;
  ServeHandler handler(registry, options);

  std::string big = R"({"rows": [)";
  for (int i = 0; i < 5; ++i) {
    if (i > 0) big += ",";
    big += train_row_json();
  }
  big += "]}";
  const std::string refused = handler.handle(big);
  EXPECT_NE(refused.find("\"ok\":false"), std::string::npos) << refused;
  EXPECT_NE(refused.find("StateError"), std::string::npos) << refused;

  const std::string served =
      handler.handle("{\"rows\": [" + train_row_json() + "]}");
  EXPECT_NE(served.find("\"ok\":true"), std::string::npos) << served;
  const ServeSummary summary = handler.summary();
  EXPECT_EQ(summary.errors, 1u);
  EXPECT_EQ(summary.rows, 1u);
}

TEST(Serve, PartialResponsesCountSeparatelyFromErrors) {
  ModelRegistry registry;
  ServeHandler handler = make_handler(registry);
  metrics::Counter& partial_metric = metrics::counter("engine.serve.partial");
  const std::uint64_t partial_before = partial_metric.value();

  std::string request = R"({"rows": [)" + train_row_json() + "," +
                        train_row_json() + "]}";
  std::string response;
  {
    // Poison one row: the batch degrades to per-row retry and exactly one
    // row fails, yielding a partial response.
    failpoint::ScopedFailpoints arm(
        "engine.session.flush=nth:1,engine.session.row=nth:1");
    response = handler.handle(request);
  }
  EXPECT_NE(response.find("\"partial\":true"), std::string::npos) << response;
  EXPECT_NE(response.find("null"), std::string::npos) << response;

  const ServeSummary summary = handler.summary();
  EXPECT_EQ(summary.partial, 1u);   // a partly-answered request is not
  EXPECT_EQ(summary.errors, 0u);    // a whole-request failure
  EXPECT_EQ(summary.rows, 1u);      // the surviving row still counts
  EXPECT_EQ(partial_metric.value(), partial_before + 1);
}

TEST(Serve, StdinLoopMatchesHandlerByteForByte) {
  const std::string requests = "{\"rows\": [" + train_row_json() + "]}\n" +
                               "\n" +  // blank line: skipped, no response
                               R"({"model": "nope", "rows": []})" + "\n" +
                               R"({"rows": 7})" + "\n";
  ModelRegistry stream_registry;
  const data::Dataset train = make_train(24);
  stream_registry.register_model("m", fit_model(train, "LR-B"),
                                 Schema::of(train));
  ServeOptions options;
  options.default_model = "m";
  std::istringstream in(requests);
  std::ostringstream out;
  const ServeSummary loop_summary =
      serve(stream_registry, in, out, options);

  ModelRegistry handler_registry;
  ServeHandler handler = make_handler(handler_registry);
  std::string expected;
  std::istringstream lines(requests);
  std::string line;
  while (std::getline(lines, line)) expected += handler.handle(line);

  EXPECT_EQ(out.str(), expected);
  const ServeSummary handler_summary = handler.summary();
  EXPECT_EQ(loop_summary.requests, handler_summary.requests);
  EXPECT_EQ(loop_summary.rows, handler_summary.rows);
  EXPECT_EQ(loop_summary.errors, handler_summary.errors);
  EXPECT_EQ(loop_summary.partial, handler_summary.partial);
}

}  // namespace
}  // namespace dsml::engine
