#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace dsml::stats {
namespace {

TEST(DescriptiveStats, Mean) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(DescriptiveStats, MeanSingleElement) {
  const std::vector<double> xs = {7.0};
  EXPECT_DOUBLE_EQ(mean(xs), 7.0);
}

TEST(DescriptiveStats, MeanEmptyThrows) {
  const std::vector<double> xs;
  EXPECT_THROW(mean(xs), InvalidArgument);
}

TEST(DescriptiveStats, SampleVariance) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
}

TEST(DescriptiveStats, PopulationVariance) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(population_variance(xs), 4.0, 1e-12);
}

TEST(DescriptiveStats, VarianceNeedsTwo) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(variance(xs), InvalidArgument);
}

TEST(DescriptiveStats, GeometricMean) {
  const std::vector<double> xs = {1.0, 4.0, 16.0};
  EXPECT_NEAR(geometric_mean(xs), 4.0, 1e-12);
}

TEST(DescriptiveStats, GeometricMeanRejectsNonPositive) {
  const std::vector<double> xs = {1.0, 0.0};
  EXPECT_THROW(geometric_mean(xs), InvalidArgument);
}

TEST(DescriptiveStats, GeometricMeanBelowArithmetic) {
  const std::vector<double> xs = {2.0, 8.0, 32.0};
  EXPECT_LT(geometric_mean(xs), mean(xs));
}

TEST(DescriptiveStats, MinMax) {
  const std::vector<double> xs = {3.0, -1.0, 7.0, 2.0};
  EXPECT_DOUBLE_EQ(min(xs), -1.0);
  EXPECT_DOUBLE_EQ(max(xs), 7.0);
}

TEST(DescriptiveStats, MedianOdd) {
  const std::vector<double> xs = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
}

TEST(DescriptiveStats, MedianEvenInterpolates) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(DescriptiveStats, PercentileEndpoints) {
  const std::vector<double> xs = {10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 30.0);
}

TEST(DescriptiveStats, PercentileInterpolation) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
}

TEST(DescriptiveStats, PercentileOutOfRangeThrows) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(percentile(xs, 101.0), InvalidArgument);
}

TEST(DescriptiveStats, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(DescriptiveStats, PearsonAntiCorrelation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> ys = {6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(DescriptiveStats, PearsonConstantIsZero) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> ys = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(DescriptiveStats, VariationAndRangeRatio) {
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(range_ratio(xs), 2.0);
  EXPECT_NEAR(variation(xs), std::sqrt(0.5) / 1.5, 1e-12);
}

TEST(DescriptiveStats, RangeRatioRejectsNonPositive) {
  const std::vector<double> xs = {0.0, 2.0};
  EXPECT_THROW(range_ratio(xs), InvalidArgument);
}

// ---------------------------------------------------------------------------

TEST(SpecialFunctions, IncompleteBetaEndpoints) {
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 1.0), 1.0);
}

TEST(SpecialFunctions, IncompleteBetaSymmetry) {
  // I_x(a,b) = 1 - I_{1-x}(b,a)
  const double x = 0.37;
  EXPECT_NEAR(incomplete_beta(2.5, 1.5, x),
              1.0 - incomplete_beta(1.5, 2.5, 1.0 - x), 1e-10);
}

TEST(SpecialFunctions, IncompleteBetaUniformCase) {
  // I_x(1,1) = x.
  for (double x : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(incomplete_beta(1.0, 1.0, x), x, 1e-10);
  }
}

TEST(SpecialFunctions, IncompleteGammaKnownValues) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.5, 1.0, 3.0}) {
    EXPECT_NEAR(incomplete_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-10);
  }
}

TEST(SpecialFunctions, NormalCdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(normal_cdf(-1.959963985), 0.025, 1e-6);
}

TEST(SpecialFunctions, NormalQuantileInvertsCdf) {
  for (double p : {0.01, 0.1, 0.5, 0.9, 0.975, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-8);
  }
}

TEST(SpecialFunctions, NormalQuantileDomain) {
  EXPECT_THROW(normal_quantile(0.0), InvalidArgument);
  EXPECT_THROW(normal_quantile(1.0), InvalidArgument);
}

TEST(SpecialFunctions, StudentTCdfSymmetry) {
  EXPECT_NEAR(student_t_cdf(0.0, 5.0), 0.5, 1e-12);
  EXPECT_NEAR(student_t_cdf(1.3, 7.0) + student_t_cdf(-1.3, 7.0), 1.0, 1e-10);
}

TEST(SpecialFunctions, StudentTKnownQuantile) {
  // t_{0.975, 10} = 2.228139.
  EXPECT_NEAR(student_t_cdf(2.228139, 10.0), 0.975, 1e-5);
}

TEST(SpecialFunctions, StudentTApproachesNormal) {
  EXPECT_NEAR(student_t_cdf(1.96, 1e6), normal_cdf(1.96), 1e-4);
}

TEST(SpecialFunctions, TTestPValue) {
  // Two-sided p for t=2.228139, nu=10 is 0.05.
  EXPECT_NEAR(t_test_p_value(2.228139, 10.0), 0.05, 1e-4);
  EXPECT_NEAR(t_test_p_value(-2.228139, 10.0), 0.05, 1e-4);
}

TEST(SpecialFunctions, FCdfKnownQuantile) {
  // F_{0.95}(5, 10) = 3.3258.
  EXPECT_NEAR(f_cdf(3.3258, 5.0, 10.0), 0.95, 1e-4);
}

TEST(SpecialFunctions, FTestPValueComplement) {
  EXPECT_NEAR(f_test_p_value(3.3258, 5.0, 10.0), 0.05, 1e-4);
}

TEST(SpecialFunctions, FCdfZeroAndNegative) {
  EXPECT_DOUBLE_EQ(f_cdf(0.0, 3.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(f_cdf(-1.0, 3.0, 3.0), 0.0);
}

TEST(SpecialFunctions, ChiSquaredKnownQuantile) {
  // chi2_{0.95, 3} = 7.8147.
  EXPECT_NEAR(chi_squared_cdf(7.8147, 3.0), 0.95, 1e-4);
}

TEST(SpecialFunctions, FDistributionRelatesToChiSquared) {
  // As d2 -> inf, F(d1, d2) CDF at x approaches chi2 CDF at d1*x.
  EXPECT_NEAR(f_cdf(2.0, 4.0, 1e7), chi_squared_cdf(8.0, 4.0), 1e-4);
}

// ---------------------------------------------------------------------------

TEST(RunningStats, MatchesBatchStatistics) {
  const std::vector<double> xs = {1.5, 2.5, -3.0, 4.0, 0.0, 7.25};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), -3.0);
  EXPECT_DOUBLE_EQ(rs.max(), 7.25);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsConcatenation) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {10.0, -5.0};
  RunningStats ra;
  RunningStats rb;
  RunningStats all;
  for (double x : a) {
    ra.add(x);
    all.add(x);
  }
  for (double x : b) {
    rb.add(x);
    all.add(x);
  }
  ra.merge(rb);
  EXPECT_EQ(ra.count(), all.count());
  EXPECT_NEAR(ra.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(ra.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(ra.min(), all.min());
  EXPECT_DOUBLE_EQ(ra.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_NEAR(empty.mean(), 1.5, 1e-12);
}

}  // namespace
}  // namespace dsml::stats
