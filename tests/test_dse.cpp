#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "dse/chronological.hpp"
#include "dse/sampled.hpp"
#include "dse/sweep.hpp"

namespace dsml::dse {
namespace {

// Tiny sweep options so tests stay fast; results are still the full 4608
// configurations, just simulated on a short trace.
SweepOptions tiny_sweep(bool use_cache = false) {
  SweepOptions opt;
  opt.full_trace_instructions = 40000;
  opt.interval_instructions = 4000;
  opt.max_clusters = 2;
  opt.use_cache = use_cache;
  opt.cache_dir = (std::filesystem::temp_directory_path() /
                   "dsml_dse_test_cache").string();
  return opt;
}

TEST(Sweep, CoversFullDesignSpace) {
  const SweepResult sweep = run_design_space_sweep("applu", tiny_sweep());
  EXPECT_EQ(sweep.cycles.size(), sim::kDesignSpaceSize);
  for (double c : sweep.cycles) EXPECT_GT(c, 0.0);
  EXPECT_GE(sweep.simpoint_count, 1u);
  EXPECT_FALSE(sweep.from_cache);
  EXPECT_GT(sweep.seconds, 0.0);
}

TEST(Sweep, CacheRoundTrip) {
  const SweepOptions opt = tiny_sweep(true);
  std::filesystem::remove_all(opt.cache_dir);
  const SweepResult fresh = run_design_space_sweep("mcf", opt);
  EXPECT_FALSE(fresh.from_cache);
  const SweepResult cached = run_design_space_sweep("mcf", opt);
  EXPECT_TRUE(cached.from_cache);
  ASSERT_EQ(cached.cycles.size(), fresh.cycles.size());
  for (std::size_t i = 0; i < fresh.cycles.size(); ++i) {
    EXPECT_DOUBLE_EQ(cached.cycles[i], fresh.cycles[i]);
  }
  EXPECT_EQ(cached.simpoint_count, fresh.simpoint_count);
  std::filesystem::remove_all(opt.cache_dir);
}

TEST(Sweep, DatasetHasTargetAndFeatures) {
  const SweepResult sweep = run_design_space_sweep("applu", tiny_sweep());
  const data::Dataset ds = sweep_dataset(sweep);
  EXPECT_EQ(ds.n_rows(), sim::kDesignSpaceSize);
  EXPECT_EQ(ds.n_features(), 24u);
  EXPECT_TRUE(ds.has_target());
}

TEST(Sweep, UnknownAppThrows) {
  EXPECT_THROW(run_design_space_sweep("fortnite", tiny_sweep()),
               InvalidArgument);
}

TEST(Sweep, ResolveCacheDirPrecedence) {
  EXPECT_EQ(resolve_cache_dir("/explicit"), "/explicit");
  ::setenv("DSML_CACHE_DIR", "/from_env", 1);
  EXPECT_EQ(resolve_cache_dir(""), "/from_env");
  ::unsetenv("DSML_CACHE_DIR");
  EXPECT_EQ(resolve_cache_dir(""), ".dsml_cache");
}

TEST(SampledDse, StructureAndSelect) {
  const SweepResult sweep = run_design_space_sweep("applu", tiny_sweep());
  const data::Dataset full = sweep_dataset(sweep);
  SampledDseOptions opt;
  opt.sampling_rates = {0.01, 0.02};
  opt.model_names = {"LR-B", "NN-S"};
  opt.zoo.nn_epoch_scale = 0.2;
  const SampledDseResult result = run_sampled_dse(full, "applu", opt);
  EXPECT_EQ(result.app, "applu");
  EXPECT_EQ(result.runs.size(), 4u);       // 2 rates x 2 models
  EXPECT_EQ(result.select.size(), 2u);     // one per rate
  for (const auto& run : result.runs) {
    EXPECT_GE(run.true_error, 0.0);
    EXPECT_GE(run.estimated_error_max, run.estimated_error_avg);
    EXPECT_GE(run.fit_seconds, 0.0);
  }
  for (const auto& sel : result.select) {
    EXPECT_TRUE(sel.chosen_model == "LR-B" || sel.chosen_model == "NN-S");
    // Select's true error equals the chosen model's true error at that rate.
    EXPECT_DOUBLE_EQ(sel.true_error,
                     result.run(sel.chosen_model, sel.rate).true_error);
  }
}

TEST(SampledDse, RunLookupThrowsOnMiss) {
  SampledDseResult result;
  EXPECT_THROW(result.run("NN-E", 0.01), InvalidArgument);
}

TEST(SampledDse, RequiresTargetAndMenus) {
  const SweepResult sweep = run_design_space_sweep("applu", tiny_sweep());
  data::Dataset no_target = sim::make_config_dataset(
      sim::enumerate_design_space());
  SampledDseOptions opt;
  EXPECT_THROW(run_sampled_dse(no_target, "x", opt), InvalidArgument);
  const data::Dataset full = sweep_dataset(sweep);
  opt.sampling_rates = {};
  EXPECT_THROW(run_sampled_dse(full, "x", opt), InvalidArgument);
}

TEST(Chronological, NineModelsByDefault) {
  ChronologicalOptions opt;
  opt.zoo.nn_epoch_scale = 0.15;
  opt.generator.record_scale = 0.6;
  const ChronologicalResult result =
      run_chronological(specdata::Family::kXeon, opt);
  EXPECT_EQ(result.models.size(), 9u);
  EXPECT_GT(result.train_rows, 0u);
  EXPECT_GT(result.test_rows, 0u);
  for (const auto& m : result.models) {
    EXPECT_GE(m.error.mean, 0.0);
    EXPECT_LT(m.error.mean, 100.0) << m.model;
  }
  EXPECT_FALSE(result.nn_importance.empty());
  EXPECT_FALSE(result.lr_importance.empty());
}

TEST(Chronological, BestAndTies) {
  ChronologicalResult result;
  result.models.push_back({"A", {3.0, 1.0, 5.0, 10}, 0.0});
  result.models.push_back({"B", {2.0, 1.0, 5.0, 10}, 0.0});
  result.models.push_back({"C", {2.05, 1.0, 5.0, 10}, 0.0});
  EXPECT_EQ(result.best().model, "B");
  const auto ties = result.best_names(0.1);
  ASSERT_EQ(ties.size(), 2u);
  EXPECT_EQ(ties[0], "B");
  EXPECT_EQ(ties[1], "C");
}

TEST(Chronological, CustomModelMenu) {
  ChronologicalOptions opt;
  opt.model_names = {"LR-E", "LR-S"};
  const ChronologicalResult result =
      run_chronological(specdata::Family::kOpteron, opt);
  ASSERT_EQ(result.models.size(), 2u);
  EXPECT_EQ(result.models[0].model, "LR-E");
  // LR models only: no NN importance recorded.
  EXPECT_TRUE(result.nn_importance.empty());
  EXPECT_FALSE(result.lr_importance.empty());
}

TEST(Chronological, LinearRegressionIsAccurate) {
  // The headline chronological claim: LR predicts next-year systems within a
  // few percent.
  ChronologicalOptions opt;
  opt.model_names = {"LR-E"};
  const ChronologicalResult result =
      run_chronological(specdata::Family::kXeon, opt);
  EXPECT_LT(result.best().error.mean, 5.0);
}

}  // namespace
}  // namespace dsml::dse
