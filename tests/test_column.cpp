#include "data/column.hpp"

#include <gtest/gtest.h>

namespace dsml::data {
namespace {

TEST(Column, NumericBasics) {
  const Column c = Column::numeric("x", {1.0, 2.5, -3.0});
  EXPECT_EQ(c.kind(), ColumnKind::kNumeric);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c.numeric_at(1), 2.5);
  EXPECT_EQ(c.label_at(2), "-3");
}

TEST(Column, NumericCodeAtThrows) {
  const Column c = Column::numeric("x", {1.0});
  EXPECT_THROW(c.code_at(0), InvalidArgument);
}

TEST(Column, FlagBasics) {
  const Column c = Column::flag("f", {true, false, true});
  EXPECT_EQ(c.kind(), ColumnKind::kFlag);
  EXPECT_DOUBLE_EQ(c.numeric_at(0), 1.0);
  EXPECT_DOUBLE_EQ(c.numeric_at(1), 0.0);
  EXPECT_EQ(c.label_at(0), "yes");
  EXPECT_EQ(c.label_at(1), "no");
  EXPECT_EQ(c.level_count(), 2u);
}

TEST(Column, CategoricalLevelsInAppearanceOrder) {
  const Column c = Column::categorical("bp", {"b", "a", "b", "c"});
  ASSERT_EQ(c.level_count(), 3u);
  EXPECT_EQ(c.levels()[0], "b");
  EXPECT_EQ(c.levels()[1], "a");
  EXPECT_EQ(c.code_at(0), 0u);
  EXPECT_EQ(c.code_at(1), 1u);
  EXPECT_EQ(c.code_at(2), 0u);
  EXPECT_EQ(c.label_at(3), "c");
}

TEST(Column, CategoricalWithExplicitLevels) {
  const Column c = Column::categorical_with_levels(
      "bp", {"perfect", "bimodal", "2-level"}, {"bimodal", "perfect"},
      /*ordered=*/true);
  EXPECT_TRUE(c.ordered());
  EXPECT_EQ(c.code_at(0), 1u);
  EXPECT_DOUBLE_EQ(c.numeric_at(0), 1.0);
}

TEST(Column, CategoricalUnknownValueThrows) {
  EXPECT_THROW(
      Column::categorical_with_levels("x", {"a"}, {"b"}),
      InvalidArgument);
}

TEST(Column, IsConstant) {
  EXPECT_TRUE(Column::numeric("x", {2.0, 2.0, 2.0}).is_constant());
  EXPECT_FALSE(Column::numeric("x", {2.0, 3.0}).is_constant());
  EXPECT_TRUE(Column::flag("f", {true, true}).is_constant());
  EXPECT_FALSE(Column::categorical("c", {"a", "b"}).is_constant());
  EXPECT_TRUE(Column::numeric("x", {}).is_constant());
}

TEST(Column, SelectPreservesKindAndLevels) {
  const Column c = Column::categorical("c", {"a", "b", "c", "a"});
  const std::vector<std::size_t> rows = {3, 1};
  const Column s = c.select(rows);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.label_at(0), "a");
  EXPECT_EQ(s.label_at(1), "b");
  EXPECT_EQ(s.levels(), c.levels());
}

TEST(Column, SelectOutOfRangeThrows) {
  const Column c = Column::numeric("x", {1.0});
  const std::vector<std::size_t> rows = {1};
  EXPECT_THROW(c.select(rows), InvalidArgument);
}

TEST(Column, AppendCompatible) {
  Column a = Column::numeric("x", {1.0});
  const Column b = Column::numeric("x", {2.0, 3.0});
  a.append(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a.numeric_at(2), 3.0);
}

TEST(Column, AppendIncompatibleThrows) {
  Column a = Column::numeric("x", {1.0});
  const Column b = Column::numeric("y", {2.0});
  EXPECT_THROW(a.append(b), InvalidArgument);
}

TEST(Column, AppendDifferentLevelsThrows) {
  Column a = Column::categorical("c", {"x"});
  const Column b = Column::categorical("c", {"y"});
  EXPECT_THROW(a.append(b), InvalidArgument);
}

TEST(ColumnKindNames, ToString) {
  EXPECT_STREQ(to_string(ColumnKind::kNumeric), "numeric");
  EXPECT_STREQ(to_string(ColumnKind::kFlag), "flag");
  EXPECT_STREQ(to_string(ColumnKind::kCategorical), "categorical");
}

}  // namespace
}  // namespace dsml::data
