// Property-based sweeps over the linear algebra kernels: randomized
// instances across a grid of shapes, checking algebraic invariants rather
// than specific values.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "linalg/decompose.hpp"
#include "linalg/matrix.hpp"

namespace dsml::linalg {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rng.gaussian();
  }
  return m;
}

Vector random_vector(std::size_t n, Rng& rng) {
  Vector v(n);
  for (double& x : v) x = rng.gaussian();
  return v;
}

class LeastSquaresProperty
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(LeastSquaresProperty, ResidualOrthogonalToColumnSpace) {
  const auto [m, n] = GetParam();
  Rng rng(m * 131 + n);
  for (int trial = 0; trial < 5; ++trial) {
    const Matrix a = random_matrix(m, n, rng);
    const Vector b = random_vector(m, rng);
    const Vector x = QR(a).solve(b);
    const Vector residual = subtract(b, a.multiply(x));
    const Vector atr = a.multiply_transposed(residual);
    for (double v : atr) {
      EXPECT_NEAR(v, 0.0, 1e-8) << "shape " << m << "x" << n;
    }
  }
}

TEST_P(LeastSquaresProperty, ExactSolutionRecovered) {
  const auto [m, n] = GetParam();
  Rng rng(m * 977 + n);
  const Matrix a = random_matrix(m, n, rng);
  const Vector x_true = random_vector(n, rng);
  const Vector b = a.multiply(x_true);
  const Vector x = QR(a).solve(b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i], x_true[i], 1e-8);
  }
}

TEST_P(LeastSquaresProperty, QtPreservesNorm) {
  const auto [m, n] = GetParam();
  Rng rng(m * 313 + n);
  const Matrix a = random_matrix(m, n, rng);
  const QR qr(a);
  const Vector b = random_vector(m, rng);
  const Vector qtb = qr.apply_qt(b);
  // Q is orthogonal: |Q^T b| = |b|.
  EXPECT_NEAR(norm2(qtb), norm2(b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LeastSquaresProperty,
    ::testing::Values(std::pair<std::size_t, std::size_t>{3, 3},
                      std::pair<std::size_t, std::size_t>{8, 3},
                      std::pair<std::size_t, std::size_t>{20, 5},
                      std::pair<std::size_t, std::size_t>{50, 10},
                      std::pair<std::size_t, std::size_t>{100, 25},
                      std::pair<std::size_t, std::size_t>{64, 1}));

class CholeskyProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskyProperty, SolveMatchesQrOnSpdSystems) {
  const std::size_t n = GetParam();
  Rng rng(n * 71);
  // SPD matrix from A^T A + eps*I.
  const Matrix a = random_matrix(n + 4, n, rng);
  Matrix spd = a.gram();
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += 0.1;
  const Vector b = random_vector(n, rng);
  const Vector x_chol = Cholesky(spd).solve(b);
  // Verify A x = b by substitution.
  const Vector back = spd.multiply(x_chol);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back[i], b[i], 1e-8);
  }
}

TEST_P(CholeskyProperty, InverseIsTwoSided) {
  const std::size_t n = GetParam();
  Rng rng(n * 91);
  const Matrix a = random_matrix(n + 2, n, rng);
  Matrix spd = a.gram();
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += 0.5;
  const Matrix inv = Cholesky(spd).inverse();
  EXPECT_LT(Matrix::max_abs_diff(spd.multiply(inv), Matrix::identity(n)),
            1e-8);
  EXPECT_LT(Matrix::max_abs_diff(inv.multiply(spd), Matrix::identity(n)),
            1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyProperty,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

TEST(MatrixProperty, TransposeIsInvolution) {
  Rng rng(7);
  const Matrix a = random_matrix(9, 5, rng);
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(a.transposed().transposed(), a), 0.0);
}

TEST(MatrixProperty, MultiplyAssociativity) {
  Rng rng(8);
  const Matrix a = random_matrix(4, 6, rng);
  const Matrix b = random_matrix(6, 3, rng);
  const Matrix c = random_matrix(3, 5, rng);
  const Matrix left = a.multiply(b).multiply(c);
  const Matrix right = a.multiply(b.multiply(c));
  EXPECT_LT(Matrix::max_abs_diff(left, right), 1e-10);
}

TEST(MatrixProperty, GramIsSymmetricPsd) {
  Rng rng(9);
  const Matrix a = random_matrix(12, 7, rng);
  const Matrix g = a.gram();
  for (std::size_t i = 0; i < 7; ++i) {
    for (std::size_t j = 0; j < 7; ++j) {
      EXPECT_DOUBLE_EQ(g(i, j), g(j, i));
    }
    EXPECT_GE(g(i, i), 0.0);
  }
  // x^T G x >= 0 for random x.
  const Vector x = random_vector(7, rng);
  EXPECT_GE(dot(x, g.multiply(x)), -1e-10);
}

}  // namespace
}  // namespace dsml::linalg
