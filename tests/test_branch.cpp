#include "sim/branch.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace dsml::sim {
namespace {

TEST(PerfectPredictor, NeverMispredicts) {
  PerfectPredictor p;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const bool taken = rng.chance(0.5);
    EXPECT_EQ(p.predict_and_update(0x1000 + i * 4, taken), taken);
  }
  EXPECT_EQ(p.mispredicts(), 0u);
  EXPECT_EQ(p.lookups(), 1000u);
  EXPECT_DOUBLE_EQ(p.mispredict_rate(), 0.0);
}

TEST(BimodalPredictor, LearnsStrongBias) {
  BimodalPredictor p;
  // Always-taken branch: after warmup, never mispredicts.
  for (int i = 0; i < 100; ++i) p.predict_and_update(0x4000, true);
  const auto mispredicts = p.mispredicts();
  for (int i = 0; i < 100; ++i) p.predict_and_update(0x4000, true);
  EXPECT_EQ(p.mispredicts(), mispredicts);
}

TEST(BimodalPredictor, HystersisAbsorbsOneOff) {
  BimodalPredictor p;
  for (int i = 0; i < 10; ++i) p.predict_and_update(0x4000, true);
  // A single not-taken then back to taken: the 2-bit counter mispredicts the
  // odd outcome but stays biased taken right after.
  p.predict_and_update(0x4000, false);
  const auto before = p.mispredicts();
  p.predict_and_update(0x4000, true);
  EXPECT_EQ(p.mispredicts(), before);  // still predicted taken
}

TEST(BimodalPredictor, CannotLearnAlternation) {
  BimodalPredictor p;
  for (int i = 0; i < 400; ++i) p.predict_and_update(0x4000, i % 2 == 0);
  // Alternating outcomes defeat a 2-bit counter: ~50% mispredict.
  EXPECT_GT(p.mispredict_rate(), 0.35);
}

TEST(BimodalPredictor, TableSizeMustBePowerOfTwo) {
  EXPECT_THROW(BimodalPredictor(1000), InvalidArgument);
}

TEST(TwoLevelPredictor, LearnsAlternation) {
  TwoLevelPredictor p;
  for (int i = 0; i < 600; ++i) p.predict_and_update(0x4000, i % 2 == 0);
  // Global history makes the alternating pattern fully predictable; warmup
  // aside, the rate must be far below bimodal's ~50%.
  EXPECT_LT(p.mispredict_rate(), 0.15);
}

TEST(TwoLevelPredictor, LearnsLongerPattern) {
  TwoLevelPredictor p;
  const bool pattern[] = {true, true, false, true, false, false};
  for (int i = 0; i < 1200; ++i) {
    p.predict_and_update(0x4000, pattern[i % 6]);
  }
  EXPECT_LT(p.mispredict_rate(), 0.2);
}

TEST(TwoLevelPredictor, HistoryBitsValidated) {
  EXPECT_THROW(TwoLevelPredictor(1024, 0), InvalidArgument);
  EXPECT_THROW(TwoLevelPredictor(1024, 40), InvalidArgument);
}

TEST(CombinationPredictor, TracksBestComponentOnPatterns) {
  // Alternating pattern: two-level wins; the tournament should converge to
  // two-level behaviour and beat a lone bimodal clearly.
  CombinationPredictor combo;
  BimodalPredictor bimodal;
  for (int i = 0; i < 1000; ++i) {
    const bool taken = i % 2 == 0;
    combo.predict_and_update(0x4000, taken);
    bimodal.predict_and_update(0x4000, taken);
  }
  EXPECT_LT(combo.mispredict_rate(), bimodal.mispredict_rate() * 0.6);
}

TEST(CombinationPredictor, MatchesBimodalOnBiasedBranches) {
  CombinationPredictor combo;
  Rng rng(7);
  std::uint64_t pc = 0x1000;
  for (int i = 0; i < 4000; ++i) {
    pc = 0x1000 + (i % 64) * 4;
    combo.predict_and_update(pc, rng.chance(0.9));
  }
  // 90% biased branches: rate should be near 10-ish percent, not worse than
  // random.
  EXPECT_LT(combo.mispredict_rate(), 0.25);
}

TEST(Factory, MakesAllKinds) {
  for (BranchPredictorKind kind :
       {BranchPredictorKind::kPerfect, BranchPredictorKind::kBimodal,
        BranchPredictorKind::kTwoLevel, BranchPredictorKind::kCombination}) {
    auto p = make_branch_predictor(kind);
    ASSERT_NE(p, nullptr);
    p->predict_and_update(0x100, true);
    EXPECT_EQ(p->lookups(), 1u);
  }
}

TEST(PredictorQuality, OrderingOnRealisticMix) {
  // Mixture of biased branches and patterned branches across many pcs:
  // perfect <= combination <= bimodal in mispredict rate.
  auto run = [](BranchPredictor& p) {
    Rng rng(42);
    for (int i = 0; i < 20000; ++i) {
      const std::uint64_t pc = 0x1000 + (i % 97) * 4;
      bool taken;
      if (pc % 3 == 0) {
        taken = (i / 97) % 2 == 0;  // patterned
      } else {
        taken = rng.chance(0.85);   // biased
      }
      p.predict_and_update(pc, taken);
    }
    return p.mispredict_rate();
  };
  PerfectPredictor perfect;
  CombinationPredictor combo;
  BimodalPredictor bimodal;
  const double r_perfect = run(perfect);
  const double r_combo = run(combo);
  const double r_bimodal = run(bimodal);
  EXPECT_LE(r_perfect, r_combo);
  EXPECT_LE(r_combo, r_bimodal + 0.02);
}

}  // namespace
}  // namespace dsml::sim
