#include "common/strings.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dsml::strings {
namespace {

TEST(Split, Basic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, PreservesEmptyFields) {
  const auto parts = split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, SingleField) {
  const auto parts = split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(Split, EmptyString) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Trim, StripsWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Trim, KeepsInnerWhitespace) {
  EXPECT_EQ(trim(" a b "), "a b");
}

TEST(Join, Basic) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({"x"}, ","), "x");
  EXPECT_EQ(join({}, ","), "");
}

TEST(ToLower, Basic) {
  EXPECT_EQ(to_lower("HeLLo 123"), "hello 123");
}

TEST(IsNumber, AcceptsNumbers) {
  EXPECT_TRUE(is_number("42"));
  EXPECT_TRUE(is_number("-3.5"));
  EXPECT_TRUE(is_number("1e-3"));
  EXPECT_TRUE(is_number("  7.0  "));
}

TEST(IsNumber, RejectsNonNumbers) {
  EXPECT_FALSE(is_number(""));
  EXPECT_FALSE(is_number("abc"));
  EXPECT_FALSE(is_number("1.2.3"));
  EXPECT_FALSE(is_number("4x"));
}

TEST(ParseDouble, Valid) {
  EXPECT_DOUBLE_EQ(parse_double("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(parse_double(" -1e2 "), -100.0);
}

TEST(ParseDouble, InvalidThrows) {
  EXPECT_THROW(parse_double("abc"), IoError);
  EXPECT_THROW(parse_double(""), IoError);
  EXPECT_THROW(parse_double("1.5x"), IoError);
}

TEST(ParseU64, Valid) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64(" 42 "), 42u);
  EXPECT_EQ(parse_u64("18446744073709551615"), 18446744073709551615ull);
}

TEST(ParseU64, InvalidThrows) {
  // Everything std::stoull would mis-handle: trailing junk silently
  // truncated, negatives wrapped to huge values, overflow.
  EXPECT_THROW(parse_u64(""), IoError);
  EXPECT_THROW(parse_u64("abc"), IoError);
  EXPECT_THROW(parse_u64("12monkeys"), IoError);
  EXPECT_THROW(parse_u64("-3"), IoError);
  EXPECT_THROW(parse_u64("3.5"), IoError);
  EXPECT_THROW(parse_u64("18446744073709551616"), IoError);  // 2^64
}

TEST(FormatDouble, FixedDigits) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace dsml::strings
