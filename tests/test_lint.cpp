#include "lint/lint.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"

namespace dsml::lint {
namespace {

const std::string kFixtures = DSML_LINT_FIXTURE_DIR;

bool has_rule(const std::vector<Diagnostic>& diagnostics,
              const std::string& rule) {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

int run_paths(const std::vector<std::string>& args, std::string* output) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run(args, out, err);
  if (output) *output = out.str() + err.str();
  return code;
}

// --- Rule hits on fixture files (each must fail with its rule id) ----------

TEST(LintFixtures, RandSource) {
  const auto d = lint_file(kFixtures + "/bad_rand.cpp");
  EXPECT_TRUE(has_rule(d, "rand-source"));
  std::string text;
  EXPECT_EQ(run_paths({kFixtures + "/bad_rand.cpp"}, &text), 1);
  EXPECT_NE(text.find("rand-source"), std::string::npos);
}

TEST(LintFixtures, FloatAccumScopedToMlAndLinalg) {
  const auto d = lint_file(kFixtures + "/src/ml/bad_float.cpp");
  EXPECT_TRUE(has_rule(d, "float-accum"));
  EXPECT_EQ(run_paths({kFixtures + "/src/ml/bad_float.cpp"}, nullptr), 1);
}

TEST(LintFixtures, FloatAccumExemptsF32NamedSources) {
  // The float32 serving path is float by contract; f32-named sources under
  // src/ml are carved out of float-accum entirely.
  const auto d = lint_file(kFixtures + "/src/ml/f32_clean.cpp");
  EXPECT_FALSE(has_rule(d, "float-accum"));
  EXPECT_EQ(run_paths({kFixtures + "/src/ml/f32_clean.cpp"}, nullptr), 0);
}

TEST(LintFixtures, IntrinsicsOutsideSimd) {
  const auto d = lint_file(kFixtures + "/src/ml/bad_intrinsics.cpp");
  // The immintrin.h include and both _mm256 lines are hits; the prefetch
  // carries an allow directive and must not be.
  EXPECT_GE(std::count_if(d.begin(), d.end(),
                          [](const Diagnostic& x) {
                            return x.rule == "intrinsics-outside-simd";
                          }),
            3);
  EXPECT_TRUE(std::none_of(d.begin(), d.end(), [](const Diagnostic& x) {
    return x.rule == "intrinsics-outside-simd" && x.line == 15;
  }));
  std::string text;
  EXPECT_EQ(run_paths({kFixtures + "/src/ml/bad_intrinsics.cpp"}, &text), 1);
  EXPECT_NE(text.find("intrinsics-outside-simd"), std::string::npos);
}

TEST(LintFixtures, IntrinsicsInsideSimdDirAreClean) {
  // The same content under src/linalg/simd/ is the sanctioned home.
  std::ifstream in(kFixtures + "/src/ml/bad_intrinsics.cpp");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto d =
      lint_source("src/linalg/simd/kernels_avx2.cpp", buffer.str());
  EXPECT_FALSE(has_rule(d, "intrinsics-outside-simd"));
}

TEST(LintFixtures, IostreamInLib) {
  const auto d = lint_file(kFixtures + "/src/common/bad_cout.cpp");
  EXPECT_TRUE(has_rule(d, "iostream-in-lib"));
  EXPECT_EQ(run_paths({kFixtures + "/src/common/bad_cout.cpp"}, nullptr), 1);
}

TEST(LintFixtures, CatchAllSwallow) {
  const auto d = lint_file(kFixtures + "/bad_catch.cpp");
  EXPECT_TRUE(has_rule(d, "catch-all-swallow"));
  EXPECT_EQ(run_paths({kFixtures + "/bad_catch.cpp"}, nullptr), 1);
}

TEST(LintFixtures, HeaderGuard) {
  const auto d = lint_file(kFixtures + "/bad_header.hpp");
  EXPECT_TRUE(has_rule(d, "header-guard"));
  EXPECT_EQ(run_paths({kFixtures + "/bad_header.hpp"}, nullptr), 1);
}

TEST(LintFixtures, NakedNew) {
  const auto d = lint_file(kFixtures + "/bad_new.cpp");
  EXPECT_TRUE(has_rule(d, "naked-new"));
  // Both the new and the delete line are flagged.
  EXPECT_GE(std::count_if(d.begin(), d.end(),
                          [](const Diagnostic& x) {
                            return x.rule == "naked-new";
                          }),
            2);
}

TEST(LintFixtures, MatrixElemInLoop) {
  const auto d = lint_file(kFixtures + "/src/ml/bad_elem_loop.cpp");
  EXPECT_TRUE(has_rule(d, "matrix-elem-in-loop"));
  EXPECT_EQ(run_paths({kFixtures + "/src/ml/bad_elem_loop.cpp"}, nullptr), 1);
}

TEST(LintFixtures, UnknownAllowIsFlagged) {
  const auto d = lint_file(kFixtures + "/bad_allow.cpp");
  EXPECT_TRUE(has_rule(d, "unknown-allow"));
}

TEST(LintFixtures, RawClockInLib) {
  const auto d = lint_file(kFixtures + "/src/common/bad_clock.cpp");
  EXPECT_TRUE(has_rule(d, "raw-clock-in-lib"));
  // The first read is flagged; the second carries an allow directive.
  EXPECT_EQ(std::count_if(d.begin(), d.end(),
                          [](const Diagnostic& x) {
                            return x.rule == "raw-clock-in-lib";
                          }),
            1);
}

TEST(LintFixtures, RawStdThrow) {
  const auto d = lint_file(kFixtures + "/src/ml/bad_raw_throw.cpp");
  EXPECT_TRUE(has_rule(d, "raw-std-throw"));
  // The runtime_error throw is flagged; the logic_error one carries an
  // allow directive.
  EXPECT_EQ(std::count_if(d.begin(), d.end(),
                          [](const Diagnostic& x) {
                            return x.rule == "raw-std-throw";
                          }),
            1);
}

// --- Suppression and clean exit --------------------------------------------

TEST(LintFixtures, AllowDirectiveSuppresses) {
  const auto d = lint_file(kFixtures + "/allowed.cpp");
  EXPECT_TRUE(d.empty()) << (d.empty() ? std::string() : d.front().rule);
  EXPECT_EQ(run_paths({kFixtures + "/allowed.cpp"}, nullptr), 0);
}

TEST(LintFixtures, CleanFileExitsZero) {
  EXPECT_TRUE(lint_file(kFixtures + "/clean.cpp").empty());
  std::string text;
  EXPECT_EQ(run_paths({kFixtures + "/clean.cpp"}, &text), 0);
  EXPECT_TRUE(text.empty());
}

TEST(LintCli, MissingPathExitsTwo) {
  EXPECT_EQ(run_paths({kFixtures + "/no_such_file.cpp"}, nullptr), 2);
}

TEST(LintCli, UnknownOptionExitsTwo) {
  EXPECT_EQ(run_paths({"--bogus"}, nullptr), 2);
}

TEST(LintCli, ListRulesShowsCatalogue) {
  std::string text;
  EXPECT_EQ(run_paths({"--list-rules"}, &text), 0);
  for (const auto& rule : rule_catalogue()) {
    EXPECT_NE(text.find(rule.id), std::string::npos) << rule.id;
  }
}

TEST(LintCli, WalkingFixtureDirectoryFindsEveryRule) {
  std::string text;
  EXPECT_EQ(run_paths({kFixtures}, &text), 1);
  for (const char* rule :
       {"rand-source", "float-accum", "iostream-in-lib", "catch-all-swallow",
        "header-guard", "naked-new", "matrix-elem-in-loop",
        "raw-clock-in-lib", "raw-std-throw", "unknown-allow"}) {
    EXPECT_NE(text.find(rule), std::string::npos) << rule;
  }
}

// --- lint_source scoping (synthetic paths, no files needed) ----------------

TEST(LintSource, FloatAllowedOutsideNumericCode) {
  const std::string source = "float fast_path(float x) { return x; }\n";
  EXPECT_TRUE(has_rule(lint_source("src/linalg/kernel.cpp", source),
                       "float-accum"));
  EXPECT_FALSE(has_rule(lint_source("src/sim/cache.cpp", source),
                        "float-accum"));
  EXPECT_FALSE(has_rule(lint_source("bench/bench_util.cpp", source),
                        "float-accum"));
}

TEST(LintSource, CoutAllowedOutsideLibrary) {
  const std::string source =
      "#include <iostream>\nvoid f() { std::cout << 1; }\n";
  EXPECT_TRUE(has_rule(lint_source("src/dse/sweep.cpp", source),
                       "iostream-in-lib"));
  EXPECT_FALSE(has_rule(lint_source("tools/main.cpp", source),
                        "iostream-in-lib"));
  EXPECT_FALSE(has_rule(lint_source("src/common/table.hpp", source),
                        "iostream-in-lib"));
}

TEST(LintSource, RngHeaderIsTheOneSanctionedRandomnessSource) {
  const std::string source = "#pragma once\ninline int x = 1;\n";
  const std::string noisy = "#pragma once\n#include <random>\n"
                            "inline std::mt19937 gen;\n";
  EXPECT_FALSE(has_rule(lint_source("src/common/rng.hpp", noisy),
                        "rand-source"));
  EXPECT_TRUE(has_rule(lint_source("src/common/other.hpp", noisy),
                       "rand-source"));
  EXPECT_FALSE(has_rule(lint_source("src/common/other.hpp", source),
                        "rand-source"));
}

TEST(LintSource, CommentsAndStringsDoNotTrigger) {
  const std::string source =
      "#pragma once\n"
      "// calling std::rand() here would be a bug\n"
      "/* so would new int or delete p */\n"
      "inline const char* kDoc = \"std::cout << new int\";\n";
  EXPECT_TRUE(lint_source("src/common/doc.hpp", source).empty());
}

TEST(LintSource, MatrixElemScopedToMlSources) {
  const std::string source =
      "void f(Matrix& w, int n) {\n"
      "  for (int i = 0; i < n; ++i) w(i, 0) += 1.0;\n"
      "}\n";
  EXPECT_TRUE(has_rule(lint_source("src/ml/mlp.cpp", source),
                       "matrix-elem-in-loop"));
  EXPECT_FALSE(has_rule(lint_source("src/linalg/matrix.cpp", source),
                        "matrix-elem-in-loop"));
  EXPECT_FALSE(has_rule(lint_source("tests/test_ml.cpp", source),
                        "matrix-elem-in-loop"));
}

TEST(LintSource, MatrixElemIgnoresQualifiedCallsAndDeadLoopVars) {
  // Namespace-qualified callees are free functions, and a loop variable must
  // not outlive its loop body.
  const std::string source =
      "void f(Matrix& w, int n) {\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    use(std::min(i, n));\n"
      "  }\n"
      "  int j = 0;\n"
      "  w(j, n) = 1.0;  // not inside any loop\n"
      "}\n";
  EXPECT_FALSE(has_rule(lint_source("src/ml/mlp.cpp", source),
                        "matrix-elem-in-loop"));
}

TEST(LintSource, RawClockScopedToLibraryOutsideTracingLayer) {
  const std::string source =
      "#include <chrono>\n"
      "auto t() { return std::chrono::steady_clock::now(); }\n";
  EXPECT_TRUE(has_rule(lint_source("src/dse/sweep.cpp", source),
                       "raw-clock-in-lib"));
  // The tracing layer and the thread pool are the sanctioned call sites, and
  // non-library code (tools, bench) may time things directly.
  EXPECT_FALSE(has_rule(lint_source("src/common/trace.cpp", source),
                        "raw-clock-in-lib"));
  EXPECT_FALSE(has_rule(lint_source("src/common/thread_pool.hpp", source),
                        "raw-clock-in-lib"));
  EXPECT_FALSE(has_rule(lint_source("bench/bench_util.cpp", source),
                        "raw-clock-in-lib"));
}

TEST(LintFixtures, DirectModelLoadInTools) {
  const auto d = lint_file(kFixtures + "/tools/bad_model_load.cpp");
  EXPECT_TRUE(has_rule(d, "direct-model-load-in-tools"));
  // Exactly one hit: the second call carries the allow directive.
  EXPECT_EQ(std::count_if(d.begin(), d.end(),
                          [](const Diagnostic& x) {
                            return x.rule == "direct-model-load-in-tools";
                          }),
            1);
  EXPECT_EQ(run_paths({kFixtures + "/tools/bad_model_load.cpp"}, nullptr), 1);
}

TEST(LintSource, DirectModelLoadScopedToTools) {
  const std::string source =
      "void f() { auto m = ml::load_model(\"model.dsml\"); }\n";
  EXPECT_TRUE(has_rule(lint_source("tools/cli.cpp", source),
                       "direct-model-load-in-tools"));
  EXPECT_TRUE(has_rule(lint_source("tools/bench_ml.cpp", source),
                       "direct-model-load-in-tools"));
  // The unqualified call form is caught too.
  EXPECT_TRUE(has_rule(
      lint_source("tools/cli.cpp", "auto m = load_model(path);\n"),
      "direct-model-load-in-tools"));
  // The engine wrapper, library code, and tests stay out of scope.
  EXPECT_FALSE(has_rule(lint_source("src/engine/registry.cpp", source),
                        "direct-model-load-in-tools"));
  EXPECT_FALSE(has_rule(lint_source("src/ml/serialize.cpp", source),
                        "direct-model-load-in-tools"));
  EXPECT_FALSE(has_rule(lint_source("tests/test_serialize.cpp", source),
                        "direct-model-load-in-tools"));
  // Mentioning the symbol without calling it (docs, the registry's own
  // comments) is fine.
  EXPECT_FALSE(has_rule(
      lint_source("tools/cli.cpp", "int load_model_count = 0;\n"),
      "direct-model-load-in-tools"));
}

TEST(LintSource, RawStdThrowScopedToLibraryOutsideErrorHeader) {
  const std::string source =
      "void f() { throw std::runtime_error(\"boom\"); }\n";
  EXPECT_TRUE(has_rule(lint_source("src/ml/linreg.cpp", source),
                       "raw-std-throw"));
  // The taxonomy itself derives from std exceptions, and code outside the
  // library (tools, tests) may throw whatever it likes.
  EXPECT_FALSE(has_rule(lint_source("src/common/error.hpp", source),
                        "raw-std-throw"));
  EXPECT_FALSE(has_rule(lint_source("tools/cli.cpp", source),
                        "raw-std-throw"));
  EXPECT_FALSE(has_rule(lint_source("tests/test_ml.cpp", source),
                        "raw-std-throw"));
}

TEST(LintSource, TaxonomyThrowsAreNotRawStdThrows) {
  const std::string source =
      "void f() { throw NumericalError(\"singular\"); }\n"
      "void g() { throw dsml::IoError(\"short read\"); }\n";
  EXPECT_FALSE(has_rule(lint_source("src/ml/linreg.cpp", source),
                        "raw-std-throw"));
}

TEST(LintSource, CatchAllThatRethrowsIsFine) {
  const std::string source =
      "void f() {\n"
      "  try { g(); } catch (...) {\n"
      "    cleanup();\n"
      "    throw;\n"
      "  }\n"
      "}\n";
  EXPECT_FALSE(has_rule(lint_source("src/common/x.cpp", source),
                        "catch-all-swallow"));
}

TEST(LintSource, CatchAllCapturingCurrentExceptionIsFine) {
  const std::string source =
      "void f(std::exception_ptr& e) {\n"
      "  try { g(); } catch (...) { e = std::current_exception(); }\n"
      "}\n";
  EXPECT_FALSE(has_rule(lint_source("src/common/x.cpp", source),
                        "catch-all-swallow"));
}

TEST(LintSource, DeletedSpecialMembersAreNotNakedDelete) {
  const std::string source =
      "#pragma once\n"
      "struct NoCopy {\n"
      "  NoCopy(const NoCopy&) = delete;\n"
      "  NoCopy& operator=(const NoCopy&) = delete;\n"
      "};\n";
  EXPECT_TRUE(lint_source("src/common/nocopy.hpp", source).empty());
}

TEST(LintSource, DiagnosticsCarryFileAndLine) {
  const std::string source = "void f() { int* p = new int(1); use(p); }\n";
  const auto d = lint_source("src/common/x.cpp", source);
  ASSERT_FALSE(d.empty());
  EXPECT_EQ(d.front().file, "src/common/x.cpp");
  EXPECT_EQ(d.front().line, 1u);
}

TEST(LintSource, MultiRuleAllowList) {
  const std::string source =
      "void f() { delete make(); }  "
      "// dsml-lint: allow(naked-new, catch-all-swallow)\n";
  EXPECT_TRUE(lint_source("src/common/x.cpp", source).empty());
}

// --- Cross-TU rules on the xtu fixture project ------------------------------

namespace fs = std::filesystem;

const std::string kXtu = kFixtures + "/xtu";
const std::string kRepoRoot = DSML_REPO_ROOT;

std::vector<Diagnostic> analyze_xtu() {
  AnalyzeOptions options;
  options.root = kXtu;
  options.use_cache = false;
  return analyze_paths({kXtu}, options);
}

std::size_t count_rule(const std::vector<Diagnostic>& diagnostics,
                       const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [&](const Diagnostic& d) { return d.rule == rule; }));
}

bool has_finding(const std::vector<Diagnostic>& diagnostics,
                 const std::string& file_part, const std::string& rule,
                 const std::string& message_part = "") {
  return std::any_of(
      diagnostics.begin(), diagnostics.end(), [&](const Diagnostic& d) {
        return d.rule == rule &&
               d.file.find(file_part) != std::string::npos &&
               d.message.find(message_part) != std::string::npos;
      });
}

/// Writes `content` to `file`, creating parent directories.
void write_file(const fs::path& file, const std::string& content) {
  fs::create_directories(file.parent_path());
  std::ofstream out(file, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out) << file;
  out << content;
}

/// A fresh scratch directory under the gtest temp root.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("dsml_lint_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TEST(LintXtu, LayerBackEdgeIsFlaggedAtTheIncludeLine) {
  const auto d = analyze_xtu();
  ASSERT_TRUE(has_finding(d, "uses_ml.hpp", "layer-violation", "back-edge"));
  const auto hit = std::find_if(d.begin(), d.end(), [](const Diagnostic& x) {
    return x.rule == "layer-violation" &&
           x.file.find("uses_ml.hpp") != std::string::npos;
  });
  EXPECT_EQ(hit->line, 5u);
  EXPECT_NE(hit->message.find("layer 'common'"), std::string::npos);
  EXPECT_NE(hit->message.find("src/ml/model.hpp"), std::string::npos);
}

TEST(LintXtu, IncludeCycleIsReportedOnceCanonically) {
  const auto d = analyze_xtu();
  EXPECT_TRUE(has_finding(
      d, "cycle_a.hpp", "layer-violation",
      "include cycle: src/common/cycle_a.hpp -> src/common/cycle_b.hpp -> "
      "src/common/cycle_a.hpp"));
  // One report for the cycle however it was entered, one for the back-edge.
  EXPECT_EQ(count_rule(d, "layer-violation"), 2u);
}

TEST(LintXtu, UnregisteredNamesAreFlaggedRegisteredOnesAreNot) {
  const auto d = analyze_xtu();
  EXPECT_TRUE(has_finding(d, "names.cpp", "unregistered-failpoint",
                          "'core.io.fial'"));
  EXPECT_TRUE(
      has_finding(d, "names.cpp", "unregistered-metric", "'core.reqests'"));
  EXPECT_TRUE(
      has_finding(d, "names.cpp", "unregistered-metric", "'core.sacn'"));
  // The registered twins and the dynamic (concatenated) name stay clean.
  EXPECT_EQ(count_rule(d, "unregistered-failpoint"), 1u);
  EXPECT_EQ(count_rule(d, "unregistered-metric"), 2u);
}

TEST(LintXtu, MissingTsanLabelScopedToUnlabelledTests) {
  const auto d = analyze_xtu();
  EXPECT_TRUE(has_finding(d, "tests/test_pool.cpp", "missing-tsan-label",
                          "common/thread_pool.hpp"));
  EXPECT_EQ(count_rule(d, "missing-tsan-label"), 1u);
}

TEST(LintXtu, SuppressedTwinsStayQuiet) {
  const auto d = analyze_xtu();
  for (const char* quiet :
       {"uses_ml_suppressed", "names_suppressed", "test_pool_suppressed",
        "test_pool_labelled"}) {
    EXPECT_FALSE(std::any_of(d.begin(), d.end(),
                             [&](const Diagnostic& x) {
                               return x.file.find(quiet) != std::string::npos;
                             }))
        << quiet;
  }
  // Exactly the six fixture hits fire (back-edge, cycle, three names, one
  // unlabelled test): anything else is a fixture regression.
  EXPECT_EQ(d.size(), 6u);
}

TEST(LintXtu, CliRunWithExplicitRoot) {
  std::string text;
  EXPECT_EQ(run_paths({"--no-cache", "--root", kXtu, kXtu}, &text), 1);
  for (const char* rule : {"layer-violation", "unregistered-failpoint",
                           "unregistered-metric", "missing-tsan-label"}) {
    EXPECT_NE(text.find(rule), std::string::npos) << rule;
  }
}

TEST(LintXtu, LintPathsBackCompatSkipsCrossTuRules) {
  // The per-file-only wrapper sees a clean fixture tree: every xtu finding
  // is a cross-TU one.
  EXPECT_TRUE(lint_paths({kXtu}).empty());
}

// --- Graph dumps ------------------------------------------------------------

TEST(LintGraph, JsonOfSrcCommonMatchesCommittedGolden) {
  std::string text;
  ASSERT_EQ(run_paths({"--no-cache", "--root", kRepoRoot, "--graph", "json",
                       kRepoRoot + "/src/common"},
                      &text),
            0);
  std::ifstream golden(kRepoRoot + "/tests/data/lint/graph_src_common.json",
                       std::ios::binary);
  ASSERT_TRUE(golden);
  std::ostringstream expected;
  expected << golden.rdbuf();
  EXPECT_EQ(text, expected.str())
      << "regenerate with: dsml lint --no-cache --graph json src/common "
         "> tests/data/lint/graph_src_common.json";
}

TEST(LintGraph, DotRendersTheLayerDigraph) {
  std::string text;
  ASSERT_EQ(run_paths({"--no-cache", "--root", kXtu, "--graph", "dot", kXtu},
                      &text),
            0);
  EXPECT_NE(text.find("digraph dsml_layers"), std::string::npos);
  EXPECT_NE(text.find("\"common\""), std::string::npos);
  EXPECT_NE(text.find("\"ml\" -> \"common\""), std::string::npos);
}

TEST(LintGraph, BadGraphModeExitsTwo) {
  EXPECT_EQ(run_paths({"--graph", "svg", kXtu}, nullptr), 2);
  EXPECT_EQ(run_paths({"--graph"}, nullptr), 2);
}

// --- SARIF export -----------------------------------------------------------

TEST(LintSarif, ExportsFindingsWithRuleMetadata) {
  const fs::path dir = scratch_dir("sarif");
  const std::string sarif = (dir / "lint.sarif").string();
  EXPECT_EQ(run_paths({"--no-cache", "--sarif", sarif,
                       kFixtures + "/bad_rand.cpp"},
                      nullptr),
            1);
  const json::Value doc = json::Value::parse_file(sarif);
  EXPECT_EQ(doc.at("version").as_string(), "2.1.0");
  const json::Value& driver =
      doc.at("runs").items().at(0).at("tool").at("driver");
  EXPECT_EQ(driver.at("name").as_string(), "dsml-lint");
  EXPECT_EQ(driver.at("rules").items().size(), rule_catalogue().size());
  const auto& results = doc.at("runs").items().at(0).at("results").items();
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results.front().at("ruleId").as_string(), "rand-source");
  EXPECT_EQ(results.front().at("level").as_string(), "error");
  const json::Value& location =
      results.front().at("locations").items().at(0).at("physicalLocation");
  EXPECT_GE(location.at("region").at("startLine").as_number(), 1.0);
}

TEST(LintSarif, CleanRunWritesEmptyResults) {
  const fs::path dir = scratch_dir("sarif_clean");
  const std::string sarif = (dir / "clean.sarif").string();
  EXPECT_EQ(run_paths({"--no-cache", "--sarif", sarif,
                       kFixtures + "/clean.cpp"},
                      nullptr),
            0);
  const json::Value doc = json::Value::parse_file(sarif);
  EXPECT_TRUE(doc.at("runs").items().at(0).at("results").items().empty());
}

// --- Incremental cache ------------------------------------------------------

TEST(LintCache, WarmRunIsIdenticalAndEditsInvalidate) {
  const fs::path dir = scratch_dir("cache");
  const fs::path cache = dir / ".dsml_cache";
  const fs::path source = dir / "src" / "common" / "leaky.cpp";
  write_file(source, "void f() { int* p = new int(1); use(p); }\n");

  const std::vector<std::string> args = {"--cache-dir", cache.string(),
                                         source.string()};
  std::string cold;
  std::string warm;
  EXPECT_EQ(run_paths(args, &cold), 1);
  EXPECT_TRUE(fs::is_regular_file(cache / "lint.cache"));
  EXPECT_EQ(run_paths(args, &warm), 1);
  EXPECT_EQ(cold, warm);

  // A content change must invalidate the entry, not replay stale findings.
  write_file(source, "void f() { auto p = make(); use(p); }\n");
  std::string fixed;
  EXPECT_EQ(run_paths(args, &fixed), 0);
  EXPECT_TRUE(fixed.empty());
}

TEST(LintCache, NoCacheFlagLeavesNoCacheDirectory) {
  const fs::path dir = scratch_dir("nocache");
  const fs::path cache = dir / ".dsml_cache";
  const fs::path source = dir / "clean_unit.cpp";
  write_file(source, "inline int one() { return 1; }\n");
  EXPECT_EQ(run_paths({"--no-cache", "--cache-dir", cache.string(),
                       source.string()},
                      nullptr),
            0);
  EXPECT_FALSE(fs::exists(cache));
}

// --- Error handling contract ------------------------------------------------

TEST(LintCli, UnreadableFileReportsAndExitsTwo) {
  if (::geteuid() == 0) {
    GTEST_SKIP() << "root bypasses file permissions";
  }
  const fs::path dir = scratch_dir("unreadable");
  const fs::path source = dir / "secret.cpp";
  write_file(source, "inline int x = 1;\n");
  fs::permissions(source, fs::perms::none);
  std::string text;
  EXPECT_EQ(run_paths({"--no-cache", source.string()}, &text), 2);
  EXPECT_NE(text.find("cannot read"), std::string::npos);
  fs::permissions(source, fs::perms::owner_all);
}

TEST(LintCli, MissingFlagValueExitsTwo) {
  EXPECT_EQ(run_paths({"--sarif"}, nullptr), 2);
  EXPECT_EQ(run_paths({"--cache-dir"}, nullptr), 2);
  EXPECT_EQ(run_paths({"--root"}, nullptr), 2);
}

TEST(LintCli, ListRulesUsesIdDashSummaryFormat) {
  std::string text;
  EXPECT_EQ(run_paths({"--list-rules"}, &text), 0);
  for (const auto& rule : rule_catalogue()) {
    EXPECT_NE(text.find(rule.id + " — " + rule.summary), std::string::npos)
        << rule.id;
  }
  // The cross-TU rules are part of the same catalogue.
  EXPECT_NE(text.find("layer-violation"), std::string::npos);
  EXPECT_NE(text.find("missing-tsan-label"), std::string::npos);
}

// --- Registry regeneration --------------------------------------------------

TEST(LintRegistries, UpdateThenLintRoundTrips) {
  const fs::path root = scratch_dir("registries");
  write_file(root / "tools" / "lint" / "layers.def",
             "layer common src/common\n");
  const std::string site = std::string("void f() {\n") +
                           "  DSML_FAIL(\"fix.io\");\n" +
                           "  metrics::counter(\"fix.requests\");\n" + "}\n";
  write_file(root / "src" / "common" / "obs.cpp", site);

  std::string text;
  EXPECT_EQ(run_paths({"--no-cache", "--root", root.string(),
                       "--update-registries"},
                      &text),
            0);
  EXPECT_NE(text.find("updated"), std::string::npos);
  for (const char* manifest :
       {"failpoints.txt", "metrics.txt", "spans.txt"}) {
    EXPECT_TRUE(
        fs::is_regular_file(root / "docs" / "registries" / manifest))
        << manifest;
  }

  // The regenerated manifests make the project lint clean...
  EXPECT_EQ(run_paths({"--no-cache", "--root", root.string(),
                       (root / "src").string()},
                      nullptr),
            0);

  // ...and a new, unregistered name is caught until the next regeneration.
  write_file(root / "src" / "common" / "typo.cpp",
             "void g() { DSML_FAIL(\"fix.oi\"); }\n");
  EXPECT_EQ(run_paths({"--no-cache", "--root", root.string(),
                       (root / "src").string()},
                      &text),
            1);
  EXPECT_NE(text.find("unregistered-failpoint"), std::string::npos);
}

}  // namespace
}  // namespace dsml::lint
