// Property sweeps over the modelling stack: encoder invariants across
// modes, regression invariants across selection methods, and the
// cross-validation estimator's consistency.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "data/encoder.hpp"
#include "ml/linreg.hpp"
#include "ml/metrics.hpp"
#include "ml/nn_models.hpp"
#include "ml/validation.hpp"

namespace dsml::ml {
namespace {

data::Dataset random_mixed_dataset(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x1(n);
  std::vector<double> x2(n);
  std::vector<bool> flag(n);
  std::vector<std::string> cat(n);
  std::vector<double> y(n);
  const char* levels[] = {"a", "b", "c"};
  for (std::size_t i = 0; i < n; ++i) {
    x1[i] = rng.uniform(-5.0, 5.0);
    x2[i] = rng.uniform(100.0, 200.0);
    flag[i] = rng.chance(0.5);
    cat[i] = levels[rng.below(3)];
    y[i] = 50.0 + 2.0 * x1[i] + 0.1 * x2[i] + (flag[i] ? 3.0 : 0.0) +
           rng.gaussian(0.0, 0.3);
  }
  data::Dataset ds;
  ds.add_feature(data::Column::numeric("x1", std::move(x1)));
  ds.add_feature(data::Column::numeric("x2", std::move(x2)));
  ds.add_feature(data::Column::flag("flag", std::move(flag)));
  ds.add_feature(data::Column::categorical("cat", std::move(cat)));
  ds.set_target("y", std::move(y));
  return ds;
}

class EncoderModeProperty
    : public ::testing::TestWithParam<data::EncodingMode> {};

TEST_P(EncoderModeProperty, TrainingEncodingAlwaysInUnitBox) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const data::Dataset ds = random_mixed_dataset(40, seed);
    data::Encoder enc;
    data::EncoderOptions opt;
    opt.mode = GetParam();
    enc.fit(ds, opt);
    const linalg::Matrix x = enc.encode(ds);
    for (std::size_t r = 0; r < x.rows(); ++r) {
      for (std::size_t c = 0; c < x.cols(); ++c) {
        EXPECT_GE(x(r, c), 0.0);
        EXPECT_LE(x(r, c), 1.0);
      }
    }
  }
}

TEST_P(EncoderModeProperty, EncodeIsRowwiseStable) {
  // Encoding a row subset equals subsetting the encoded matrix.
  const data::Dataset ds = random_mixed_dataset(30, 9);
  data::Encoder enc;
  data::EncoderOptions opt;
  opt.mode = GetParam();
  enc.fit(ds, opt);
  const linalg::Matrix full = enc.encode(ds);
  const std::vector<std::size_t> rows = {3, 17, 29};
  const linalg::Matrix sub = enc.encode(ds.select_rows(rows));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t c = 0; c < full.cols(); ++c) {
      EXPECT_DOUBLE_EQ(sub(i, c), full(rows[i], c));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, EncoderModeProperty,
                         ::testing::Values(
                             data::EncodingMode::kLinearRegression,
                             data::EncodingMode::kNeuralNetwork));

class LinRegMethodProperty : public ::testing::TestWithParam<LinRegMethod> {};

TEST_P(LinRegMethodProperty, TrainErrorSmallOnLinearGroundTruth) {
  for (std::uint64_t seed = 11; seed <= 13; ++seed) {
    const data::Dataset ds = random_mixed_dataset(100, seed);
    LinearRegression::Options opt;
    opt.method = GetParam();
    LinearRegression model(opt);
    model.fit(ds);
    EXPECT_LT(mape(model.predict(ds), ds.target()), 1.0)
        << to_string(GetParam()) << " seed " << seed;
  }
}

TEST_P(LinRegMethodProperty, SelectedSubsetOfEnter) {
  // Every selection method's predictor set is a subset of what Enter admits
  // (after the collinearity pre-filter).
  const data::Dataset ds = random_mixed_dataset(120, 17);
  LinearRegression::Options enter_opt;
  enter_opt.method = LinRegMethod::kEnter;
  LinearRegression enter(enter_opt);
  enter.fit(ds);
  const auto universe = enter.selected_predictors();

  LinearRegression::Options opt;
  opt.method = GetParam();
  LinearRegression model(opt);
  model.fit(ds);
  for (const auto& name : model.selected_predictors()) {
    EXPECT_NE(std::find(universe.begin(), universe.end(), name),
              universe.end())
        << name;
  }
}

TEST_P(LinRegMethodProperty, RSquaredWithinUnitRange) {
  const data::Dataset ds = random_mixed_dataset(80, 23);
  LinearRegression::Options opt;
  opt.method = GetParam();
  LinearRegression model(opt);
  model.fit(ds);
  EXPECT_GE(model.ols().r2, 0.0);
  EXPECT_LE(model.ols().r2, 1.0 + 1e-12);
  EXPECT_LE(model.ols().adjusted_r2, model.ols().r2 + 1e-12);
}

// --- Degenerate training data must fail loudly (or survive harmlessly) -----

data::Dataset constant_feature_dataset(std::size_t n) {
  std::vector<double> c1(n, 3.0);
  std::vector<double> c2(n, -1.5);
  std::vector<double> y(n);
  Rng rng(41);
  for (std::size_t i = 0; i < n; ++i) y[i] = rng.uniform(10.0, 20.0);
  data::Dataset ds;
  ds.add_feature(data::Column::numeric("c1", std::move(c1)));
  ds.add_feature(data::Column::numeric("c2", std::move(c2)));
  ds.set_target("y", std::move(y));
  return ds;
}

data::Dataset duplicated_rows_dataset(std::size_t n, std::uint64_t seed) {
  const data::Dataset base = random_mixed_dataset(n, seed);
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < n; ++i) {
    rows.push_back(i);
    rows.push_back(i);  // every observation appears twice
  }
  return base.select_rows(rows);
}

TEST_P(LinRegMethodProperty, AllConstantFeaturesAreRejected) {
  const data::Dataset ds = constant_feature_dataset(30);
  LinearRegression::Options opt;
  opt.method = GetParam();
  LinearRegression model(opt);
  try {
    model.fit(ds);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    // The encoder rejects the degenerate design up front with a clear
    // message (constant columns carry no information and are dropped).
    EXPECT_NE(std::string(e.what()).find("dropped"), std::string::npos)
        << e.what();
  }
}

TEST_P(LinRegMethodProperty, NonFiniteTargetsAreRejected) {
  for (double bad : {std::nan(""), std::numeric_limits<double>::infinity()}) {
    data::Dataset ds = random_mixed_dataset(40, 43);
    std::vector<double> y(ds.target().begin(), ds.target().end());
    y[7] = bad;
    ds.set_target("y", std::move(y));
    LinearRegression::Options opt;
    opt.method = GetParam();
    LinearRegression model(opt);
    try {
      model.fit(ds);
      FAIL() << "expected InvalidArgument for target " << bad;
    } catch (const InvalidArgument& e) {
      EXPECT_NE(std::string(e.what()).find("non-finite"), std::string::npos);
    }
  }
}

TEST_P(LinRegMethodProperty, DuplicatedRowsStillFitFinite) {
  // Exact duplicates change leverage but not rank; the fit must stay clean.
  const data::Dataset ds = duplicated_rows_dataset(40, 47);
  LinearRegression::Options opt;
  opt.method = GetParam();
  LinearRegression model(opt);
  model.fit(ds);
  for (double p : model.predict(ds)) EXPECT_TRUE(std::isfinite(p));
  EXPECT_LT(mape(model.predict(ds), ds.target()), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Methods, LinRegMethodProperty,
                         ::testing::Values(LinRegMethod::kEnter,
                                           LinRegMethod::kStepwise,
                                           LinRegMethod::kForward,
                                           LinRegMethod::kBackward),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           name.erase(
                               std::remove(name.begin(), name.end(), '-'),
                               name.end());
                           return name;
                         });

ml::NeuralRegressor quick_nn() {
  NeuralRegressor::Options opt;
  opt.method = NnMethod::kQuick;
  opt.epoch_scale = 0.05;
  return NeuralRegressor(opt);
}

TEST(NeuralProperty, AllConstantFeaturesAreRejected) {
  const data::Dataset ds = constant_feature_dataset(30);
  auto model = quick_nn();
  try {
    model.fit(ds);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("dropped"), std::string::npos)
        << e.what();
  }
}

TEST(NeuralProperty, NonFiniteTargetsAreRejected) {
  data::Dataset ds = random_mixed_dataset(40, 53);
  std::vector<double> y(ds.target().begin(), ds.target().end());
  y.back() = std::nan("");
  ds.set_target("y", std::move(y));
  auto model = quick_nn();
  EXPECT_THROW(model.fit(ds), InvalidArgument);
}

TEST(NeuralProperty, DuplicatedRowsStillFitFinite) {
  const data::Dataset ds = duplicated_rows_dataset(30, 59);
  auto model = quick_nn();
  model.fit(ds);
  for (double p : model.predict(ds)) EXPECT_TRUE(std::isfinite(p));
}

TEST(ValidationProperty, EstimateTracksNoiseFloor) {
  // With a y = f(x) + noise ground truth and a well-specified model, the CV
  // estimate should land near the irreducible error, across noise levels.
  Rng rng(31);
  for (double noise : {0.5, 2.0, 8.0}) {
    const std::size_t n = 200;
    std::vector<double> x(n);
    std::vector<double> y(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = rng.uniform(0.0, 10.0);
      y[i] = 100.0 + 5.0 * x[i] + rng.gaussian(0.0, noise);
    }
    data::Dataset ds;
    ds.add_feature(data::Column::numeric("x", std::move(x)));
    ds.set_target("y", std::move(y));
    const ErrorEstimate est = estimate_error(
        []() -> std::unique_ptr<Regressor> {
          return std::make_unique<LinearRegression>();
        },
        ds);
    // Mean |noise| as a percentage of the mean response (~125) scaled by
    // sqrt(2/pi) for half-normal expectation.
    const double floor_pct = 100.0 * noise * std::sqrt(2.0 / M_PI) / 125.0;
    EXPECT_GT(est.average, floor_pct * 0.4) << noise;
    EXPECT_LT(est.average, floor_pct * 2.5) << noise;
  }
}

}  // namespace
}  // namespace dsml::ml
