#include "workload/simpoint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "workload/generator.hpp"
#include "workload/profiles.hpp"

namespace dsml::workload {
namespace {

TEST(Bbv, IntervalCount) {
  const auto trace = generate_trace(spec_profile("gcc"), 50000);
  const auto bbv = collect_bbv(trace, 5000);
  EXPECT_EQ(bbv.n_intervals(), 10u);
  EXPECT_EQ(bbv.interval_length, 5000u);
}

TEST(Bbv, ProjectedDimensions) {
  const auto trace = generate_trace(spec_profile("gcc"), 20000);
  const auto bbv = collect_bbv(trace, 5000, 15);
  for (const auto& v : bbv.vectors) {
    EXPECT_EQ(v.size(), 15u);
  }
}

TEST(Bbv, VectorsBoundedByL1Normalisation) {
  // After L1 normalisation and ±1 projection, every component is in [-1, 1].
  const auto trace = generate_trace(spec_profile("mesa"), 40000);
  const auto bbv = collect_bbv(trace, 4000);
  for (const auto& v : bbv.vectors) {
    for (double x : v) {
      EXPECT_GE(x, -1.0);
      EXPECT_LE(x, 1.0);
    }
  }
}

TEST(Bbv, TraceShorterThanIntervalThrows) {
  const auto trace = generate_trace(spec_profile("applu"), 1000);
  EXPECT_THROW(collect_bbv(trace, 5000), InvalidArgument);
}

TEST(Bbv, DeterministicForSeed) {
  const auto trace = generate_trace(spec_profile("gcc"), 30000);
  const auto a = collect_bbv(trace, 5000, 15, 9);
  const auto b = collect_bbv(trace, 5000, 15, 9);
  EXPECT_EQ(a.vectors, b.vectors);
}

// ---------------------------------------------------------------------------

std::vector<std::vector<double>> blob_points() {
  // Three well-separated clusters in 2D.
  std::vector<std::vector<double>> points;
  Rng rng(5);
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 20; ++i) {
      points.push_back({centers[c][0] + rng.gaussian(0.0, 0.3),
                        centers[c][1] + rng.gaussian(0.0, 0.3)});
    }
  }
  return points;
}

TEST(KMeans, RecoversSeparatedClusters) {
  const auto points = blob_points();
  Rng rng(1);
  const auto result = k_means(points, 3, rng);
  // Points from the same blob share an assignment.
  for (int c = 0; c < 3; ++c) {
    const std::size_t first = result.assignment[c * 20];
    for (int i = 1; i < 20; ++i) {
      EXPECT_EQ(result.assignment[c * 20 + i], first);
    }
  }
  EXPECT_LT(result.inertia, 60.0 * 0.5);
}

TEST(KMeans, InertiaNonIncreasingInK) {
  const auto points = blob_points();
  Rng rng(2);
  double prev = std::numeric_limits<double>::infinity();
  for (std::size_t k = 1; k <= 5; ++k) {
    Rng local(3);
    const auto result = k_means(points, k, local);
    EXPECT_LE(result.inertia, prev * 1.05);  // allow seeding noise
    prev = result.inertia;
  }
}

TEST(KMeans, KOneCentroidIsMean) {
  const std::vector<std::vector<double>> points = {{0.0}, {2.0}, {4.0}};
  Rng rng(4);
  const auto result = k_means(points, 1, rng);
  EXPECT_NEAR(result.centroids[0][0], 2.0, 1e-9);
}

TEST(KMeans, InvalidKThrows) {
  const std::vector<std::vector<double>> points = {{0.0}, {1.0}};
  Rng rng(6);
  EXPECT_THROW(k_means(points, 0, rng), InvalidArgument);
  EXPECT_THROW(k_means(points, 3, rng), InvalidArgument);
}

TEST(KMeansBic, PrefersTrueClusterCount) {
  const auto points = blob_points();
  double best_bic = -std::numeric_limits<double>::infinity();
  std::size_t best_k = 0;
  for (std::size_t k = 1; k <= 6; ++k) {
    Rng rng(7);
    const auto result = k_means(points, k, rng);
    const double bic = k_means_bic(points, result);
    if (bic > best_bic) {
      best_bic = bic;
      best_k = k;
    }
  }
  EXPECT_EQ(best_k, 3u);
}

// ---------------------------------------------------------------------------

TEST(SimPoints, WeightsSumToOne) {
  const auto trace = generate_trace(spec_profile("gcc"), 60000);
  const auto points = choose_simpoints(trace, 5000, 5);
  double total = 0.0;
  for (const auto& p : points.points) total += p.weight;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GE(points.points.size(), 1u);
  EXPECT_LE(points.points.size(), 5u);
}

TEST(SimPoints, IndicesValidAndSorted) {
  const auto trace = generate_trace(spec_profile("mesa"), 60000);
  const auto points = choose_simpoints(trace, 6000, 4);
  for (std::size_t i = 0; i < points.points.size(); ++i) {
    EXPECT_LT(points.points[i].interval_index, points.n_intervals);
    if (i > 0) {
      EXPECT_GT(points.points[i].interval_index,
                points.points[i - 1].interval_index);
    }
  }
}

TEST(SimPoints, DistinctPhasesGetDistinctPoints) {
  // Concatenate two applications with wildly different code: SimPoint must
  // recognise the two execution regimes and pick at least one
  // representative in each half.
  const auto first = generate_trace(spec_profile("applu"), 40000);
  const auto second = generate_trace(spec_profile("gcc"), 40000);
  sim::Trace combined;
  combined.instrs = first.instrs;
  combined.instrs.insert(combined.instrs.end(), second.instrs.begin(),
                         second.instrs.end());
  const auto points = choose_simpoints(combined, 8000, 6);
  ASSERT_GE(points.points.size(), 2u);
  bool in_first_half = false;
  bool in_second_half = false;
  for (const auto& p : points.points) {
    if (p.interval_index < 5) in_first_half = true;
    if (p.interval_index >= 5) in_second_half = true;
  }
  EXPECT_TRUE(in_first_half);
  EXPECT_TRUE(in_second_half);
}

TEST(ExtractIntervals, ConcatenatesRepresentatives) {
  const auto trace = generate_trace(spec_profile("equake"), 60000);
  const auto points = choose_simpoints(trace, 5000, 4);
  const auto reduced = extract_intervals(trace, points);
  EXPECT_EQ(reduced.size(), points.points.size() * 5000);
  // First extracted instruction matches the first interval's first instr.
  const std::size_t first =
      points.points.front().interval_index * 5000;
  EXPECT_EQ(reduced.instrs.front().pc, trace.instrs[first].pc);
}

TEST(WeightedEstimate, WithinFullSimulationBallpark) {
  const auto trace = generate_trace(spec_profile("applu"), 60000);
  const auto points = choose_simpoints(trace, 5000, 4);
  sim::ProcessorConfig config;
  const auto full = sim::simulate(config, trace);
  const double estimate = weighted_cycle_estimate(config, trace, points);
  // SimPoint's promise: the extrapolated estimate tracks full simulation.
  // The band is generous (40%) because each representative interval is
  // simulated from a cold cache state at this tiny scale, which biases the
  // estimate high — the real SimPoint mitigates this with warmup, and the
  // bias shrinks with interval length.
  EXPECT_NEAR(estimate, static_cast<double>(full.cycles),
              0.40 * static_cast<double>(full.cycles));
  EXPECT_GE(estimate, static_cast<double>(full.cycles) * 0.75);
}

}  // namespace
}  // namespace dsml::workload
