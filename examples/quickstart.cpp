// Quickstart: fit a performance surrogate from a handful of simulations and
// use it to predict configurations you never simulated.
//
//   $ ./examples/quickstart
//
// This walks the library's core loop end to end:
//   1. synthesize a workload trace (here: the gcc-like profile);
//   2. simulate a SMALL random sample of the 4608-point design space;
//   3. train a neural-network surrogate (NN-E, the paper's best);
//   4. predict the cycle count of unseen configurations and check a few
//      against the simulator.
#include <cstdio>

#include "common/rng.hpp"
#include "data/split.hpp"
#include "ml/metrics.hpp"
#include "ml/model_zoo.hpp"
#include "sim/core.hpp"
#include "workload/generator.hpp"
#include "workload/profiles.hpp"

int main() {
  using namespace dsml;

  // 1. A synthetic gcc-like instruction trace (50K instructions keeps this
  //    example fast; the benches use SimPoint-reduced multi-100K traces).
  const workload::AppProfile profile = workload::spec_profile("gcc");
  const sim::Trace trace = workload::generate_trace(profile, 50'000);
  std::printf("workload: %s, %zu instructions\n", profile.name.c_str(),
              trace.size());

  // 2. Simulate a 2%% random sample of the design space.
  const std::vector<sim::ProcessorConfig> space =
      sim::enumerate_design_space();
  Rng rng(42);
  const std::vector<std::size_t> sample =
      data::sample_fraction(space.size(), 0.02, rng);
  std::printf("simulating %zu of %zu configurations...\n", sample.size(),
              space.size());

  std::vector<sim::ProcessorConfig> sampled_configs;
  std::vector<double> sampled_cycles;
  for (std::size_t idx : sample) {
    sampled_configs.push_back(space[idx]);
    sampled_cycles.push_back(
        static_cast<double>(sim::simulate(space[idx], trace).cycles));
  }
  const data::Dataset train =
      sim::make_config_dataset(sampled_configs, sampled_cycles);

  // 3. Train the paper's best model (NN-E, exhaustive prune).
  auto model = ml::make_model("NN-E").make();
  model->fit(train);
  std::printf("trained %s on %zu simulations\n", model->name().c_str(),
              train.n_rows());

  // 4. Predict 20 configurations we did not simulate, and verify.
  const std::vector<std::size_t> rest =
      data::complement(space.size(), sample);
  std::vector<sim::ProcessorConfig> probe_configs;
  std::vector<double> probe_cycles;
  for (std::size_t i = 0; i < 20; ++i) {
    const std::size_t idx = rest[(i * 997) % rest.size()];
    probe_configs.push_back(space[idx]);
    probe_cycles.push_back(
        static_cast<double>(sim::simulate(space[idx], trace).cycles));
  }
  const data::Dataset probe = sim::make_config_dataset(probe_configs);
  const std::vector<double> predicted = model->predict(probe);

  std::printf("\n%-14s %-14s %-8s\n", "predicted", "simulated", "error");
  for (std::size_t i = 0; i < probe_configs.size(); ++i) {
    std::printf("%-14.0f %-14.0f %5.1f%%\n", predicted[i], probe_cycles[i],
                100.0 * std::abs(predicted[i] - probe_cycles[i]) /
                    probe_cycles[i]);
  }
  std::printf("\nmean error on unseen configurations: %.2f%%\n",
              ml::mape(predicted, probe_cycles));
  std::printf("(the paper reports ~3.4%% over the full space at a 1%% "
              "sampling rate)\n");
  return 0;
}
