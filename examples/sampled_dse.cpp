// Sampled design-space exploration, end to end (the paper's §4.2 workflow
// for one application).
//
//   $ ./examples/sampled_dse [app] [rate]
//
// app  : applu | equake | gcc | mesa | mcf   (default mcf)
// rate : training sample fraction in (0,1]   (default 0.02)
//
// Pipeline: full synthetic run → SimPoint interval selection → simulate all
// 4608 configurations on the reduced trace → train LR-B / NN-S / NN-E on the
// sample → report estimated (cross-validation) and true errors, plus the
// Select meta-model's choice.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "dse/sampled.hpp"
#include "dse/sweep.hpp"

int main(int argc, char** argv) {
  using namespace dsml;
  const std::string app = argc > 1 ? argv[1] : "mcf";
  const double rate = argc > 2 ? std::atof(argv[2]) : 0.02;

  dse::SweepOptions sweep_options;
  sweep_options.full_trace_instructions = 600'000;
  sweep_options.interval_instructions = 30'000;
  sweep_options.max_clusters = 4;
  std::printf("sweeping the %zu-point design space for '%s' "
              "(cached after the first run)...\n",
              sim::kDesignSpaceSize, app.c_str());
  const dse::SweepResult sweep = dse::run_design_space_sweep(app, sweep_options);
  std::printf("  %zu SimPoint intervals, %zu instructions per config%s\n",
              sweep.simpoint_count, sweep.simulated_instructions,
              sweep.from_cache ? " [cache hit]" : "");

  const data::Dataset full = dse::sweep_dataset(sweep);

  dse::SampledDseOptions options;
  options.sampling_rates = {rate};
  const dse::SampledDseResult result =
      dse::run_sampled_dse(full, app, options);

  std::printf("\n%-6s  %-12s  %-12s  %-10s\n", "model", "est. error",
              "true error", "fit time");
  for (const auto& run : result.runs) {
    std::printf("%-6s  %9.2f %%  %9.2f %%  %7.2f s\n", run.model.c_str(),
                run.estimated_error_max, run.true_error, run.fit_seconds);
  }
  const auto& select = result.select.front();
  std::printf("\nSelect picked %s (estimated %.2f%%), true error %.2f%% over "
              "all %zu configurations\n",
              select.chosen_model.c_str(), select.estimated_error,
              select.true_error, full.n_rows());
  return 0;
}
