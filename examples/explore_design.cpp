// Design-space exploration with a surrogate in the loop — the use case the
// paper's introduction motivates: find the best configurations under a
// designer's constraint without simulating the whole space.
//
//   $ ./examples/explore_design [app]
//
// Workflow:
//   1. simulate 2% of the space, train the Select meta-model on it;
//   2. rank ALL 4608 configurations by predicted cycles;
//   3. apply a "budget" constraint (no L3, narrow machine) and rank again;
//   4. verify the surrogate's top picks against real simulations.
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <string>

#include "common/rng.hpp"
#include "data/split.hpp"
#include "ml/model_zoo.hpp"
#include "ml/validation.hpp"
#include "sim/core.hpp"
#include "workload/generator.hpp"
#include "workload/profiles.hpp"

namespace {

void report_top(const char* title,
                const std::vector<dsml::sim::ProcessorConfig>& space,
                const std::vector<double>& predicted,
                const std::vector<std::size_t>& order,
                const dsml::sim::Trace& trace, std::size_t top) {
  std::printf("\n%s\n", title);
  std::printf("%-4s %-52s %-12s %-12s\n", "rank", "configuration",
              "predicted", "simulated");
  for (std::size_t i = 0; i < top && i < order.size(); ++i) {
    const std::size_t idx = order[i];
    const auto actual = dsml::sim::simulate(space[idx], trace);
    std::printf("%-4zu %-52s %-12.0f %-12llu\n", i + 1,
                space[idx].key().c_str(), predicted[idx],
                static_cast<unsigned long long>(actual.cycles));
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsml;
  const std::string app = argc > 1 ? argv[1] : "gcc";
  const workload::AppProfile profile = workload::spec_profile(app);
  const sim::Trace trace = workload::generate_trace(profile, 60'000);
  const std::vector<sim::ProcessorConfig> space =
      sim::enumerate_design_space();

  // Train the Select meta-model on a 2% sample.
  Rng rng(7);
  const auto sample = data::sample_fraction(space.size(), 0.02, rng);
  std::vector<sim::ProcessorConfig> train_configs;
  std::vector<double> train_cycles;
  for (std::size_t idx : sample) {
    train_configs.push_back(space[idx]);
    train_cycles.push_back(
        static_cast<double>(sim::simulate(space[idx], trace).cycles));
  }
  std::printf("simulated %zu configurations for training ('%s')\n",
              sample.size(), app.c_str());

  ml::SelectModel select(ml::sampled_dse_menu());
  select.fit(sim::make_config_dataset(train_configs, train_cycles));
  std::printf("Select committed to %s\n", select.chosen_name().c_str());

  // Predict every configuration in the space.
  const data::Dataset all = sim::make_config_dataset(space);
  const std::vector<double> predicted = select.predict(all);

  // Unconstrained ranking.
  std::vector<std::size_t> order(space.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return predicted[a] < predicted[b];
  });
  report_top("Top predicted configurations (unconstrained):", space,
             predicted, order, trace, 3);

  // Constrained ranking: a cost-limited design — no L3, narrow pipeline.
  std::vector<std::size_t> budget;
  for (std::size_t i = 0; i < space.size(); ++i) {
    if (!space[i].has_l3() && space[i].width == 4) budget.push_back(i);
  }
  std::sort(budget.begin(), budget.end(), [&](std::size_t a, std::size_t b) {
    return predicted[a] < predicted[b];
  });
  report_top("Top predicted configurations (budget: no L3, width 4):", space,
             predicted, budget, trace, 3);

  std::printf("\nTotal simulations spent: %zu of %zu (%.1f%%)\n",
              sample.size() + 6, space.size(),
              100.0 * static_cast<double>(sample.size() + 6) /
                  static_cast<double>(space.size()));
  return 0;
}
