// Chronological prediction of future-system performance (the paper's §4.3
// workflow): train the nine models on one family's 2005 SPEC announcements
// and predict the ratings of its 2006 systems.
//
//   $ ./examples/chronological [family]
//
// family: xeon | p4 | pd | opteron | opteron2 | opteron4 | opteron8
#include <cstdio>
#include <string>

#include "dse/chronological.hpp"

int main(int argc, char** argv) {
  using namespace dsml;
  const std::string arg = argc > 1 ? argv[1] : "xeon";
  specdata::Family family = specdata::Family::kXeon;
  if (arg == "p4") family = specdata::Family::kPentium4;
  else if (arg == "pd") family = specdata::Family::kPentiumD;
  else if (arg == "opteron") family = specdata::Family::kOpteron;
  else if (arg == "opteron2") family = specdata::Family::kOpteron2;
  else if (arg == "opteron4") family = specdata::Family::kOpteron4;
  else if (arg == "opteron8") family = specdata::Family::kOpteron8;
  else if (arg != "xeon") {
    std::printf("unknown family '%s'\n", arg.c_str());
    return 1;
  }

  const dse::ChronologicalResult result =
      dse::run_chronological(family, {});
  std::printf("%s: trained on %zu announcements from 2005, predicting %zu "
              "from 2006\n\n",
              to_string(result.family), result.train_rows, result.test_rows);
  std::printf("%-6s  %-12s  %-10s\n", "model", "mean error", "std");
  for (const auto& m : result.models) {
    std::printf("%-6s  %9.2f %%  %7.2f %%\n", m.model.c_str(), m.error.mean,
                m.error.stddev);
  }
  std::printf("\nbest model: %s at %.2f%% mean error\n",
              result.best().model.c_str(), result.best().error.mean);

  std::printf("\nmost important predictors (best linear model, standardized "
              "betas):\n");
  for (std::size_t i = 0; i < result.lr_importance.size() && i < 5; ++i) {
    std::printf("  %-24s %.3f\n", result.lr_importance[i].name.c_str(),
                result.lr_importance[i].importance);
  }
  std::printf("most important predictors (best neural network, sensitivity):\n");
  for (std::size_t i = 0; i < result.nn_importance.size() && i < 5; ++i) {
    std::printf("  %-24s %.3f\n", result.nn_importance[i].name.c_str(),
                result.nn_importance[i].importance);
  }
  return 0;
}
