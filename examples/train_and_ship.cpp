// Train a surrogate once, save it to disk, reload it in a "deployment"
// context and keep predicting — the workflow a design team would use to
// share a trained model without sharing the simulator time behind it.
//
//   $ ./examples/train_and_ship
#include <cstdio>
#include <filesystem>

#include "common/rng.hpp"
#include "data/split.hpp"
#include "ml/metrics.hpp"
#include "ml/model_zoo.hpp"
#include "ml/serialize.hpp"
#include "sim/core.hpp"
#include "workload/generator.hpp"
#include "workload/profiles.hpp"

int main() {
  using namespace dsml;
  const sim::Trace trace =
      workload::generate_trace(workload::spec_profile("equake"), 50'000);
  const std::vector<sim::ProcessorConfig> space =
      sim::enumerate_design_space();

  // --- training side: simulate a sample, fit, save -------------------------
  Rng rng(11);
  const auto sample = data::sample_fraction(space.size(), 0.02, rng);
  std::vector<sim::ProcessorConfig> configs;
  std::vector<double> cycles;
  for (std::size_t idx : sample) {
    configs.push_back(space[idx]);
    cycles.push_back(
        static_cast<double>(sim::simulate(space[idx], trace).cycles));
  }
  auto model = ml::make_model("NN-E").make();
  model->fit(sim::make_config_dataset(configs, cycles));

  const std::string path = "equake_surrogate.dsml";
  ml::save_model(*model, path);
  std::printf("trained %s on %zu simulations, saved to %s (%ju bytes)\n",
              model->name().c_str(), sample.size(), path.c_str(),
              static_cast<std::uintmax_t>(std::filesystem::file_size(path)));

  // --- deployment side: reload and predict --------------------------------
  const auto shipped = ml::load_model(path);
  std::printf("reloaded model: %s\n", shipped->name().c_str());

  // Sanity: the shipped model predicts identically to the original.
  const data::Dataset all = sim::make_config_dataset(space);
  const auto a = model->predict(all);
  const auto b = shipped->predict(all);
  double max_delta = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    max_delta = std::max(max_delta, std::abs(a[i] - b[i]));
  }
  std::printf("max prediction delta original vs reloaded: %g (exact "
              "round-trip)\n",
              max_delta);

  // And it still explains the design space.
  std::vector<double> truth;
  std::vector<double> predicted;
  for (std::size_t i = 0; i < 40; ++i) {
    const std::size_t idx = (i * 113) % space.size();
    truth.push_back(
        static_cast<double>(sim::simulate(space[idx], trace).cycles));
    predicted.push_back(b[idx]);
  }
  std::printf("shipped-model error on 40 fresh configurations: %.2f%%\n",
              ml::mape(predicted, truth));
  std::filesystem::remove(path);
  return 0;
}
