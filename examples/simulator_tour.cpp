// A tour of the simulator substrate: how each Table-1 parameter moves the
// cycle count for each application profile. Useful for understanding what
// the surrogate models are learning.
//
//   $ ./examples/simulator_tour
#include <cstdio>

#include "sim/core.hpp"
#include "workload/generator.hpp"
#include "workload/profiles.hpp"

namespace {

dsml::sim::ProcessorConfig baseline() {
  dsml::sim::ProcessorConfig c;
  c.l1d_size_kb = 32;
  c.l1i_size_kb = 32;
  c.l1d_line_b = 32;
  c.l1i_line_b = 32;
  c.l2_size_kb = 256;
  c.l2_assoc = 4;
  c.branch_predictor = dsml::sim::BranchPredictorKind::kBimodal;
  c.width = 4;
  c.ruu_size = 128;
  c.lsq_size = 64;
  c.itlb_size_kb = 256;
  c.dtlb_size_kb = 512;
  c.fu = {4, 2, 2, 4, 2};
  return c;
}

}  // namespace

int main() {
  using namespace dsml;
  std::printf("Per-parameter speedup over a baseline configuration "
              "(baseline: 32K L1s, 256K L2, no L3, bimodal, width 4)\n\n");
  std::printf("%-28s", "upgrade");
  for (const auto& name : workload::spec_profile_names()) {
    std::printf(" %9s", name.c_str());
  }
  std::printf("\n");

  struct Variant {
    const char* name;
    sim::ProcessorConfig config;
  };
  std::vector<Variant> variants;
  {
    auto c = baseline();
    c.l1d_size_kb = 64;
    c.l1i_size_kb = 64;
    variants.push_back({"L1 caches 32K->64K", c});
  }
  {
    auto c = baseline();
    c.l2_size_kb = 1024;
    variants.push_back({"L2 256K->1M", c});
  }
  {
    auto c = baseline();
    c.l3_size_mb = 8;
    c.l3_line_b = 256;
    c.l3_assoc = 8;
    variants.push_back({"add 8M L3", c});
  }
  {
    auto c = baseline();
    c.branch_predictor = sim::BranchPredictorKind::kCombination;
    variants.push_back({"bimodal->combination BP", c});
  }
  {
    auto c = baseline();
    c.branch_predictor = sim::BranchPredictorKind::kPerfect;
    variants.push_back({"perfect BP (oracle)", c});
  }
  {
    auto c = baseline();
    c.width = 8;
    c.fu = {8, 4, 4, 8, 4};
    variants.push_back({"width 4->8 (+FUs)", c});
  }
  {
    auto c = baseline();
    c.ruu_size = 256;
    c.lsq_size = 128;
    c.itlb_size_kb = 1024;
    c.dtlb_size_kb = 2048;
    variants.push_back({"RUU/LSQ/TLBs doubled", c});
  }

  for (const auto& variant : variants) {
    std::printf("%-28s", variant.name);
    for (const auto& name : workload::spec_profile_names()) {
      const auto trace =
          workload::generate_trace(workload::spec_profile(name), 120'000);
      const auto base = sim::simulate(baseline(), trace);
      const auto upgraded = sim::simulate(variant.config, trace);
      std::printf(" %8.2fx", static_cast<double>(base.cycles) /
                                 static_cast<double>(upgraded.cycles));
    }
    std::printf("\n");
  }
  std::printf("\nReading: mcf/gcc respond to caches and branch prediction, "
              "applu to width — the per-application sensitivity structure "
              "the surrogates exploit.\n");
  return 0;
}
