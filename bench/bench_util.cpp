#include "bench_util.hpp"

#include <filesystem>
#include <sstream>

#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace dsml::bench {

namespace {

std::string figure_cache_path(const std::string& app,
                              const dse::SweepOptions& sweep) {
  std::ostringstream os;
  os << dse::resolve_cache_dir(sweep.cache_dir) << "/fig_" << app << "_n"
     << sweep.full_trace_instructions << "_iv" << sweep.interval_instructions
     << "_k" << sweep.max_clusters << "_v2.csv";
  return os.str();
}

std::string chrono_cache_path(specdata::Family family) {
  std::ostringstream os;
  os << dse::resolve_cache_dir("") << "/chrono_"
     << static_cast<int>(family) << "_v2.csv";
  return os.str();
}

bool load_sampled_cache(const std::string& path,
                        dse::SampledDseResult& result) {
  if (!std::filesystem::exists(path)) return false;
  const csv::Table t = csv::read_file(path);
  const std::size_t kind = t.column_index("kind");
  const std::size_t model = t.column_index("model");
  const std::size_t rate = t.column_index("rate");
  const std::size_t est_max = t.column_index("est_max");
  const std::size_t est_avg = t.column_index("est_avg");
  const std::size_t true_err = t.column_index("true_err");
  const std::size_t fit_s = t.column_index("fit_seconds");
  for (const auto& row : t.rows) {
    if (row[kind] == "run") {
      dse::SampledRun r;
      r.model = row[model];
      r.rate = strings::parse_double(row[rate]);
      r.estimated_error_max = strings::parse_double(row[est_max]);
      r.estimated_error_avg = strings::parse_double(row[est_avg]);
      r.true_error = strings::parse_double(row[true_err]);
      r.fit_seconds = strings::parse_double(row[fit_s]);
      result.runs.push_back(std::move(r));
    } else {
      dse::SelectRun s;
      s.chosen_model = row[model];
      s.rate = strings::parse_double(row[rate]);
      s.estimated_error = strings::parse_double(row[est_max]);
      s.true_error = strings::parse_double(row[true_err]);
      result.select.push_back(std::move(s));
    }
  }
  return !result.runs.empty();
}

void store_sampled_cache(const std::string& path,
                         const dse::SampledDseResult& result) {
  csv::Table t;
  t.header = {"kind", "model", "rate", "est_max", "est_avg", "true_err",
              "fit_seconds"};
  for (const auto& r : result.runs) {
    t.rows.push_back({"run", r.model, strings::format_double(r.rate, 4),
                      strings::format_double(r.estimated_error_max, 6),
                      strings::format_double(r.estimated_error_avg, 6),
                      strings::format_double(r.true_error, 6),
                      strings::format_double(r.fit_seconds, 6)});
  }
  for (const auto& s : result.select) {
    t.rows.push_back({"select", s.chosen_model,
                      strings::format_double(s.rate, 4),
                      strings::format_double(s.estimated_error, 6), "0",
                      strings::format_double(s.true_error, 6), "0"});
  }
  csv::write_file(path, t);
}

}  // namespace

dse::SampledDseResult sampled_dse_for_app(const std::string& app) {
  const dse::SweepOptions sweep = sweep_options();
  const std::string path = figure_cache_path(app, sweep);
  dse::SampledDseResult result;
  result.app = app;
  if (load_sampled_cache(path, result)) return result;

  const dse::SweepResult sr = dse::run_design_space_sweep(app, sweep);
  const data::Dataset full = dse::sweep_dataset(sr);
  dse::SampledDseOptions options;
  if (fast_mode()) {
    options.sampling_rates = {0.01, 0.03, 0.05};
    options.zoo.nn_epoch_scale = 0.5;
  }
  result = dse::run_sampled_dse(full, app, options);
  store_sampled_cache(path, result);
  return result;
}

void print_sampled_figure(const dse::SampledDseResult& result,
                          const std::string& figure_label) {
  std::cout << figure_label << " — estimated vs true error, application '"
            << result.app << "'\n";
  std::cout << "(percentage prediction error, mean over the full design "
               "space; -est rows are the §3.3 cross-validation estimate)\n";
  std::vector<double> rates;
  for (const auto& s : result.select) rates.push_back(s.rate);
  std::vector<std::string> header = {"series"};
  for (double r : rates) {
    header.push_back(strings::format_double(r * 100.0, 0) + "%");
  }
  TablePrinter table(header);
  for (const std::string model : {"NN-E", "NN-S", "LR-B"}) {
    std::vector<double> true_row;
    std::vector<double> est_row;
    for (double rate : rates) {
      const auto& run = result.run(model, rate);
      true_row.push_back(run.true_error);
      est_row.push_back(run.estimated_error_max);
    }
    table.add_row_numeric(model, true_row);
    table.add_row_numeric(model + "-est", est_row);
  }
  table.print(std::cout);
  std::cout << "\n";
}

dse::ChronologicalResult chronological_for_family(specdata::Family family) {
  const std::string path = chrono_cache_path(family);
  if (std::filesystem::exists(path)) {
    const csv::Table t = csv::read_file(path);
    dse::ChronologicalResult result;
    result.family = family;
    const std::size_t kind = t.column_index("kind");
    const std::size_t name = t.column_index("name");
    const std::size_t mean = t.column_index("mean");
    const std::size_t sd = t.column_index("sd");
    const std::size_t fit_s = t.column_index("fit_seconds");
    for (const auto& row : t.rows) {
      if (row[kind] == "model") {
        dse::ChronoModelResult m;
        m.model = row[name];
        m.error.mean = strings::parse_double(row[mean]);
        m.error.stddev = strings::parse_double(row[sd]);
        m.fit_seconds = strings::parse_double(row[fit_s]);
        result.models.push_back(std::move(m));
      } else if (row[kind] == "nn_imp") {
        result.nn_importance.push_back(
            {row[name], strings::parse_double(row[mean])});
      } else if (row[kind] == "lr_imp") {
        result.lr_importance.push_back(
            {row[name], strings::parse_double(row[mean])});
      } else if (row[kind] == "meta") {
        result.train_rows =
            static_cast<std::size_t>(strings::parse_double(row[mean]));
        result.test_rows =
            static_cast<std::size_t>(strings::parse_double(row[sd]));
      }
    }
    if (!result.models.empty()) return result;
  }

  dse::ChronologicalOptions options;
  if (fast_mode()) {
    options.zoo.nn_epoch_scale = 0.5;
  }
  dse::ChronologicalResult result = dse::run_chronological(family, options);

  csv::Table t;
  t.header = {"kind", "name", "mean", "sd", "fit_seconds"};
  t.rows.push_back({"meta", to_string(family),
                    std::to_string(result.train_rows),
                    std::to_string(result.test_rows), "0"});
  for (const auto& m : result.models) {
    t.rows.push_back({"model", m.model, strings::format_double(m.error.mean, 6),
                      strings::format_double(m.error.stddev, 6),
                      strings::format_double(m.fit_seconds, 6)});
  }
  for (const auto& imp : result.nn_importance) {
    t.rows.push_back({"nn_imp", imp.name,
                      strings::format_double(imp.importance, 6), "0", "0"});
  }
  for (const auto& imp : result.lr_importance) {
    t.rows.push_back({"lr_imp", imp.name,
                      strings::format_double(imp.importance, 6), "0", "0"});
  }
  csv::write_file(path, t);
  return result;
}

void print_chrono_figure(const dse::ChronologicalResult& result,
                         const std::string& figure_label) {
  std::cout << figure_label << " — chronological predictions, "
            << to_string(result.family) << " based systems\n";
  std::cout << "(train on 2005 announcements, predict 2006; mean and std of "
               "percentage error)\n";
  TablePrinter table({"model", "mean err %", "std %"});
  for (const auto& m : result.models) {
    table.add_row({m.model, strings::format_double(m.error.mean, 2),
                   strings::format_double(m.error.stddev, 2)});
  }
  table.print(std::cout);
  std::cout << "best: " << result.best().model << " ("
            << strings::format_double(result.best().error.mean, 2) << "%)\n\n";
}

}  // namespace dsml::bench
