// Shared infrastructure for the figure/table benches.
//
// Every bench prints the rows/series of one table or figure from the paper.
// Environment knobs (all optional):
//   DSML_CACHE_DIR        where sweep/figure results are cached
//   DSML_SWEEP_FULL       full-trace instructions per app   (default 2000000)
//   DSML_SWEEP_INTERVAL   SimPoint interval instructions    (default 40000)
//   DSML_SWEEP_CLUSTERS   max SimPoint clusters             (default 6)
//   DSML_FAST             1 = small traces & reduced menus (quick smoke runs)
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "dse/chronological.hpp"
#include "dse/sampled.hpp"
#include "dse/sweep.hpp"

namespace dsml::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name); v && *v) {
    return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
  }
  return fallback;
}

inline bool fast_mode() { return env_size("DSML_FAST", 0) != 0; }

inline dse::SweepOptions sweep_options() {
  dse::SweepOptions options;
  if (fast_mode()) {
    options.full_trace_instructions = env_size("DSML_SWEEP_FULL", 300'000);
    options.interval_instructions = env_size("DSML_SWEEP_INTERVAL", 15'000);
    options.max_clusters = env_size("DSML_SWEEP_CLUSTERS", 4);
  } else {
    options.full_trace_instructions = env_size("DSML_SWEEP_FULL", 2'000'000);
    options.interval_instructions = env_size("DSML_SWEEP_INTERVAL", 40'000);
    options.max_clusters = env_size("DSML_SWEEP_CLUSTERS", 6);
  }
  return options;
}

/// Load (or compute) the sampled-DSE experiment result for one app, cached
/// as CSV so repeated bench runs are cheap.
dse::SampledDseResult sampled_dse_for_app(const std::string& app);

/// Print one Figure-2..6 panel (estimated vs true error for NN-E/NN-S/LR-B
/// across sampling rates).
void print_sampled_figure(const dse::SampledDseResult& result,
                          const std::string& figure_label);

/// Run the chronological experiment for a family (cached).
dse::ChronologicalResult chronological_for_family(specdata::Family family);

/// Print one Figure-7/8 panel (nine models, mean ± std error).
void print_chrono_figure(const dse::ChronologicalResult& result,
                         const std::string& figure_label);

}  // namespace dsml::bench
