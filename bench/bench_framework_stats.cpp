// Framework statistics of §4.1: the 4608-point design space, per-application
// cycle range/variation across the full space, and the synthetic SPEC
// database statistics per family vs the paper's published numbers.
#include <iostream>

#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "specdata/generator.hpp"
#include "workload/profiles.hpp"

#include "bench_util.hpp"

int main() {
  using namespace dsml;
  std::cout << "§4.1 framework statistics\n\n";
  std::cout << "Design space: " << sim::enumerate_design_space().size()
            << " configurations (paper: 4608)\n\n";

  {
    std::cout << "Simulated cycle statistics over the full design space "
                 "(paper range/variation: applu 1.62/0.16, equake 1.73/0.19, "
                 "gcc 5.27/0.33, mesa 2.22/0.19, mcf 6.38/0.71):\n";
    TablePrinter table({"app", "range", "variation", "paper range",
                        "paper variation"});
    struct PaperRow { const char* app; const char* range; const char* var; };
    const PaperRow paper[] = {{"applu", "1.62", "0.16"},
                              {"equake", "1.73", "0.19"},
                              {"gcc", "5.27", "0.33"},
                              {"mesa", "2.22", "0.19"},
                              {"mcf", "6.38", "0.71"}};
    for (const auto& row : paper) {
      const auto sweep =
          dse::run_design_space_sweep(row.app, bench::sweep_options());
      table.add_row({row.app,
                     strings::format_double(stats::range_ratio(sweep.cycles), 2),
                     strings::format_double(stats::variation(sweep.cycles), 2),
                     row.range, row.var});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  {
    std::cout << "Synthetic SPEC announcement database per family "
                 "(records / rating range / variation vs paper):\n";
    TablePrinter table({"family", "records", "range", "variation",
                        "paper (rec/range/var)"});
    for (specdata::Family family : specdata::all_families()) {
      const auto records = specdata::generate_family(family, {});
      std::vector<double> ratings;
      for (const auto& r : records) ratings.push_back(r.spec_rating);
      const auto paper = specdata::paper_family_stats(family);
      table.add_row(
          {to_string(family), std::to_string(records.size()),
           strings::format_double(stats::range_ratio(ratings), 2),
           strings::format_double(stats::variation(ratings), 2),
           std::to_string(paper.records) + "/" +
               strings::format_double(paper.range, 2) + "/" +
               strings::format_double(paper.variation, 2)});
    }
    table.print(std::cout);
  }
  return 0;
}
