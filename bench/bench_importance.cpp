// §4.4 predictor-importance discussion: the relative importance of the input
// parameters for the Opteron and Pentium D chronological models.
//
// Paper reference points: for Opteron, NN importance processor speed 0.659,
// memory frequency 0.154, L2 on/off chip 0.147, L1 D size 0.139; LR included
// processor speed (standardized beta 0.915) and memory size (0.119). For
// Pentium D, NN: processor speed 0.570, L2 size 0.500, L1 shared 0.206, ...
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"

#include "bench_util.hpp"

namespace {

void print_importance(const char* title,
                      const std::vector<dsml::ml::PredictorImportance>& imps,
                      std::size_t top) {
  std::cout << title << "\n";
  dsml::TablePrinter table({"predictor", "importance"});
  for (std::size_t i = 0; i < imps.size() && i < top; ++i) {
    table.add_row({imps[i].name,
                   dsml::strings::format_double(imps[i].importance, 3)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace dsml;
  std::cout << "§4.4 — relative predictor importance (0 = no effect, 1 = "
               "fully determines the prediction)\n\n";
  {
    const auto result =
        bench::chronological_for_family(specdata::Family::kOpteron);
    print_importance("Opteron — best NN model (paper: speed 0.659, mem freq "
                     "0.154, L2 on/off 0.147, L1D 0.139):",
                     result.nn_importance, 6);
    print_importance("Opteron — best LR model standardized betas (paper: "
                     "speed 0.915, memory size 0.119):",
                     result.lr_importance, 6);
  }
  {
    const auto result =
        bench::chronological_for_family(specdata::Family::kPentiumD);
    print_importance("Pentium D — best NN model (paper: speed 0.570, L2 size "
                     "0.500, L1 shared 0.206, ...):",
                     result.nn_importance, 6);
    print_importance("Pentium D — best LR model standardized betas (paper: "
                     "speed 0.733, L2 size 0.583, ...):",
                     result.lr_importance, 6);
  }
  return 0;
}
