// Micro-benchmarks of the simulator substrate (google-benchmark): timing-
// model throughput per branch-predictor kind, cache and predictor lookup
// costs, and trace generation speed.
#include <benchmark/benchmark.h>

#include "sim/core.hpp"
#include "workload/generator.hpp"
#include "workload/profiles.hpp"
#include "workload/simpoint.hpp"

namespace {

using namespace dsml;

const sim::Trace& bench_trace() {
  static const sim::Trace trace =
      workload::generate_trace(workload::spec_profile("gcc"), 100'000);
  return trace;
}

void BM_SimulateTrace(benchmark::State& state) {
  const sim::Trace& trace = bench_trace();
  auto space = sim::enumerate_design_space();
  const auto& config = space[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    auto result = sim::simulate(config, trace);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()));
}

void BM_CacheAccess(benchmark::State& state) {
  sim::Cache cache(64 * 1024, 64, 4);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addr));
    addr += 48;  // mixed hit/miss pattern
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_BranchPredictor(benchmark::State& state) {
  auto predictor = sim::make_branch_predictor(
      static_cast<sim::BranchPredictorKind>(state.range(0)));
  std::uint64_t pc = 0x400000;
  bool taken = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor->predict_and_update(pc, taken));
    pc += 16;
    taken = !taken;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_GenerateTrace(benchmark::State& state) {
  const auto profile = workload::spec_profile("mcf");
  for (auto _ : state) {
    auto trace = workload::generate_trace(
        profile, static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(trace);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_SimPointSelection(benchmark::State& state) {
  const auto trace =
      workload::generate_trace(workload::spec_profile("gcc"), 200'000);
  for (auto _ : state) {
    auto points = workload::choose_simpoints(trace, 10'000, 5);
    benchmark::DoNotOptimize(points);
  }
}

BENCHMARK(BM_SimulateTrace)->Arg(0)->Arg(1151)->Arg(4607)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CacheAccess);
BENCHMARK(BM_BranchPredictor)->DenseRange(0, 3);
BENCHMARK(BM_GenerateTrace)->Arg(100'000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimPointSelection)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
