// Micro-benchmarks of model construction cost (google-benchmark).
//
// The paper reports that linear regression models build in milliseconds,
// NN-S in seconds, and NN-E "up to tens of minutes" on the largest inputs —
// i.e. LR ≪ NN-S ≪ NN-E. These benchmarks verify that ordering holds for
// our implementations (absolute times differ: our data sets are smaller and
// epoch budgets tuned for them).
#include <benchmark/benchmark.h>

#include "ml/model_zoo.hpp"
#include "specdata/generator.hpp"

namespace {

using namespace dsml;

const data::Dataset& train_data() {
  static const data::Dataset dataset = [] {
    specdata::GeneratorOptions options;
    options.seed = 99;
    const auto records =
        specdata::generate_family(specdata::Family::kXeon, options);
    auto [train, test] = specdata::chronological_split(records, 2005);
    return train;
  }();
  return dataset;
}

void fit_model(benchmark::State& state, const char* name) {
  const data::Dataset& train = train_data();
  for (auto _ : state) {
    auto model = ml::make_model(name).make();
    model->fit(train);
    benchmark::DoNotOptimize(model);
  }
}

void BM_FitLinearRegressionEnter(benchmark::State& state) {
  fit_model(state, "LR-E");
}
void BM_FitLinearRegressionBackward(benchmark::State& state) {
  fit_model(state, "LR-B");
}
void BM_FitNnSingle(benchmark::State& state) { fit_model(state, "NN-S"); }
void BM_FitNnQuick(benchmark::State& state) { fit_model(state, "NN-Q"); }
void BM_FitNnExhaustivePrune(benchmark::State& state) {
  fit_model(state, "NN-E");
}

void BM_PredictLinearRegression(benchmark::State& state) {
  const data::Dataset& train = train_data();
  auto model = ml::make_model("LR-B").make();
  model->fit(train);
  for (auto _ : state) {
    auto out = model->predict(train);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(train.n_rows()));
}

void BM_PredictNeuralNetwork(benchmark::State& state) {
  const data::Dataset& train = train_data();
  auto model = ml::make_model("NN-S").make();
  model->fit(train);
  for (auto _ : state) {
    auto out = model->predict(train);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(train.n_rows()));
}

BENCHMARK(BM_FitLinearRegressionEnter)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FitLinearRegressionBackward)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FitNnSingle)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FitNnQuick)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FitNnExhaustivePrune)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PredictLinearRegression)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PredictNeuralNetwork)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
