// Micro-benchmarks of model construction cost (google-benchmark).
//
// The paper reports that linear regression models build in milliseconds,
// NN-S in seconds, and NN-E "up to tens of minutes" on the largest inputs —
// i.e. LR ≪ NN-S ≪ NN-E. These benchmarks verify that ordering holds for
// our implementations (absolute times differ: our data sets are smaller and
// epoch budgets tuned for them).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "data/split.hpp"
#include "ml/model_zoo.hpp"
#include "specdata/generator.hpp"

namespace {

using namespace dsml;

const data::Dataset& train_data() {
  static const data::Dataset dataset = [] {
    specdata::GeneratorOptions options;
    options.seed = 99;
    const auto records =
        specdata::generate_family(specdata::Family::kXeon, options);
    auto [train, test] = specdata::chronological_split(records, 2005);
    return train;
  }();
  return dataset;
}

void fit_model(benchmark::State& state, const char* name) {
  const data::Dataset& train = train_data();
  for (auto _ : state) {
    auto model = ml::make_model(name).make();
    model->fit(train);
    benchmark::DoNotOptimize(model);
  }
}

void BM_FitLinearRegressionEnter(benchmark::State& state) {
  fit_model(state, "LR-E");
}
void BM_FitLinearRegressionBackward(benchmark::State& state) {
  fit_model(state, "LR-B");
}
void BM_FitNnSingle(benchmark::State& state) { fit_model(state, "NN-S"); }
void BM_FitNnQuick(benchmark::State& state) { fit_model(state, "NN-Q"); }
void BM_FitNnExhaustivePrune(benchmark::State& state) {
  fit_model(state, "NN-E");
}

void BM_PredictLinearRegression(benchmark::State& state) {
  const data::Dataset& train = train_data();
  auto model = ml::make_model("LR-B").make();
  model->fit(train);
  for (auto _ : state) {
    auto out = model->predict(train);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(train.n_rows()));
}

// The per-fold select_rows copies inside ml::estimate_error. Each fold
// materializes a fit half and a holdout half; keeping those copies (rather
// than teaching every model a row-index view) is justified by this number:
// one split costs microseconds while the fold's model fit costs milliseconds
// to seconds (see BM_Fit* above and the estimate_error.select_rows_copy
// section of BENCH_ML.json / docs/PERFORMANCE.md).
void BM_SelectRowsHalfSplit(benchmark::State& state) {
  const data::Dataset& train = train_data();
  Rng rng(7);
  const auto halves = data::split_half(train.n_rows(), rng);
  for (auto _ : state) {
    auto fit_part = train.select_rows(halves.first);
    auto holdout_part = train.select_rows(halves.second);
    benchmark::DoNotOptimize(fit_part);
    benchmark::DoNotOptimize(holdout_part);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(train.n_rows()));
}

void BM_PredictNeuralNetwork(benchmark::State& state) {
  const data::Dataset& train = train_data();
  auto model = ml::make_model("NN-S").make();
  model->fit(train);
  for (auto _ : state) {
    auto out = model->predict(train);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(train.n_rows()));
}

BENCHMARK(BM_FitLinearRegressionEnter)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FitLinearRegressionBackward)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FitNnSingle)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FitNnQuick)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FitNnExhaustivePrune)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SelectRowsHalfSplit)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PredictLinearRegression)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PredictNeuralNetwork)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
