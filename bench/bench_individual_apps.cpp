// Extension experiment: chronological prediction of INDIVIDUAL application
// ratios. §4 of the paper: "we have also tested individual SPEC applications
// and show that they can also be accurately estimated, however due to space
// constraints their presentations are omitted". This bench presents them.
//
// For the Xeon family, each SPECint2000 application's ratio is predicted
// from 2005 → 2006 with the best linear model and the best NN, alongside the
// whole-rate row for reference.
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "dse/chronological.hpp"
#include "specdata/spec_metric.hpp"

#include "bench_util.hpp"

int main() {
  using namespace dsml;
  std::cout << "Individual-application chronological predictions, Xeon "
               "(extension of §4 — the paper reports these are accurate but "
               "omits the tables)\n";
  TablePrinter table({"target", "LR-E err %", "NN-M err %"});

  dse::ChronologicalOptions options;
  options.model_names = {"LR-E", "NN-M"};
  if (bench::fast_mode()) options.zoo.nn_epoch_scale = 0.5;

  auto row = [&](const specdata::RatingTarget& target) {
    options.target = target;
    const auto result =
        dse::run_chronological(specdata::Family::kXeon, options);
    table.add_row({target.name(),
                   strings::format_double(result.models[0].error.mean, 2),
                   strings::format_double(result.models[1].error.mean, 2)});
  };

  row(specdata::RatingTarget::int_rate());
  for (std::size_t i = 0; i < specdata::specint2000_apps().size(); ++i) {
    row(specdata::RatingTarget::int_app(i));
  }
  table.print(std::cout);
  std::cout << "\nReading: per-application ratios are predicted nearly as "
               "well as the aggregate rating (slightly noisier: a single "
               "application lacks the geometric mean's averaging).\n";
  return 0;
}
