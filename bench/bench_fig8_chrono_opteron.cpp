// Figure 8: chronological predictions for AMD Opteron based systems with
// one (a), two (b), four (c) and eight (d) processors.
#include "bench_util.hpp"

int main() {
  using dsml::specdata::Family;
  const std::pair<Family, const char*> panels[] = {
      {Family::kOpteron, "Figure 8(a)"},
      {Family::kOpteron2, "Figure 8(b)"},
      {Family::kOpteron4, "Figure 8(c)"},
      {Family::kOpteron8, "Figure 8(d)"},
  };
  for (const auto& [family, label] : panels) {
    const auto result = dsml::bench::chronological_for_family(family);
    dsml::bench::print_chrono_figure(result, label);
  }
  return 0;
}
