// Extension experiment: chronological prediction of the SPECfp2000 rating.
// The paper's database contains both suites (3550 int + 3482 fp results);
// its tables use SPECint. This bench runs the §4.3 protocol against the fp
// rating for every family.
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "dse/chronological.hpp"

#include "bench_util.hpp"

int main() {
  using namespace dsml;
  std::cout << "SPECfp2000 chronological predictions (extension — paper "
               "evaluates SPECint; the database carries both suites)\n";
  TablePrinter table({"family", "best model", "fp err %", "int err % (ref)"});

  dse::ChronologicalOptions options;
  options.model_names = {"LR-E", "LR-S", "NN-M", "NN-E"};
  if (bench::fast_mode()) options.zoo.nn_epoch_scale = 0.5;

  for (specdata::Family family : specdata::all_families()) {
    options.target = specdata::RatingTarget::fp_rate();
    const auto fp = dse::run_chronological(family, options);
    options.target = specdata::RatingTarget::int_rate();
    const auto integer = dse::run_chronological(family, options);
    table.add_row({to_string(family), fp.best().model,
                   strings::format_double(fp.best().error.mean, 2),
                   strings::format_double(integer.best().error.mean, 2)});
  }
  table.print(std::cout);
  std::cout << "\nReading: the same LR-dominates pattern holds for fp "
               "ratings; errors are comparable to the int experiment.\n";
  return 0;
}
