// Table 3: average accuracy over the five applications for LR-B, NN-E, NN-S
// and the Select meta-method at 1%–5% sampling rates.
#include <map>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "workload/profiles.hpp"

#include "bench_util.hpp"

int main() {
  using namespace dsml;
  std::cout << "Table 3 — mean true error (%) across applications vs "
               "sampling rate\n"
            << "(paper: LR-B 4.2/4.0/3.8/3.8/3.8, NN-E 3.5/2.0/1.1/0.9/0.9, "
               "NN-S 5.9/3.2/2.2/1.2/1.5, Select 3.4/2.6/1.1/0.9/0.9)\n";

  std::map<std::string, std::map<double, double>> sums;  // model -> rate -> sum
  std::map<double, double> select_sums;
  std::size_t apps = 0;
  std::vector<double> rates;
  for (const std::string& app : workload::spec_profile_names()) {
    const auto result = bench::sampled_dse_for_app(app);
    ++apps;
    if (rates.empty()) {
      for (const auto& s : result.select) rates.push_back(s.rate);
    }
    for (const auto& run : result.runs) {
      sums[run.model][run.rate] += run.true_error;
    }
    for (const auto& sel : result.select) {
      select_sums[sel.rate] += sel.true_error;
    }
  }

  std::vector<std::string> header = {"statistics"};
  for (double r : rates) header.push_back(strings::format_double(r * 100, 0) + "%");
  TablePrinter table(header);
  for (const std::string model : {"LR-B", "NN-E", "NN-S"}) {
    std::vector<double> row;
    for (double r : rates) row.push_back(sums[model][r] / double(apps));
    table.add_row_numeric(model, row);
  }
  std::vector<double> select_row;
  for (double r : rates) select_row.push_back(select_sums[r] / double(apps));
  table.add_row_numeric("Select", select_row);
  table.print(std::cout);
  return 0;
}
