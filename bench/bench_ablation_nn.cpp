// Ablation: neural-network design choices — the training-budget/accuracy
// trade-off per regime (epoch_scale), justifying the per-method epoch
// defaults, and the chronological overfitting effect the paper discusses
// (more training makes 2006 predictions worse even as 2005 fit improves).
#include <chrono>
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "ml/metrics.hpp"
#include "ml/model_zoo.hpp"
#include "specdata/generator.hpp"

#include "bench_util.hpp"

int main() {
  using namespace dsml;

  const auto records =
      specdata::generate_family(specdata::Family::kOpteron2, {});
  auto [train, test] = specdata::chronological_split(records, 2005);

  std::cout << "Ablation B1 — training budget (epoch_scale) vs train/test "
               "error for NN-E and NN-S, Opteron-2 chronological task\n";
  TablePrinter table(
      {"model", "epoch scale", "train err %", "test err %", "fit s"});
  for (const char* name : {"NN-S", "NN-E"}) {
    for (double scale : {0.25, 0.5, 1.0, 2.0}) {
      ml::ZooOptions zoo;
      zoo.nn_epoch_scale = scale;
      auto model = ml::make_model(name, zoo).make();
      const auto t0 = std::chrono::steady_clock::now();
      model->fit(train);
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      const double train_err =
          ml::mape(model->predict(train), train.target());
      const double test_err = ml::mape(model->predict(test), test.target());
      table.add_row({name, strings::format_double(scale, 2),
                     strings::format_double(train_err, 2),
                     strings::format_double(test_err, 2),
                     strings::format_double(seconds, 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nReading: training error keeps falling with budget while "
               "test error flattens or rises — the §4.3 overfitting effect "
               "that makes linear regression the better chronological "
               "predictor.\n";
  return 0;
}
