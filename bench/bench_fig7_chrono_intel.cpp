// Figure 7: chronological predictions for Xeon (a), Pentium 4 (b) and
// Pentium D (c) based systems — nine models, mean ± std percentage error.
#include "bench_util.hpp"

int main() {
  using dsml::specdata::Family;
  const std::pair<Family, const char*> panels[] = {
      {Family::kXeon, "Figure 7(a)"},
      {Family::kPentium4, "Figure 7(b)"},
      {Family::kPentiumD, "Figure 7(c)"},
  };
  for (const auto& [family, label] : panels) {
    const auto result = dsml::bench::chronological_for_family(family);
    dsml::bench::print_chrono_figure(result, label);
  }
  return 0;
}
