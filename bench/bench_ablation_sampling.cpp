// Ablation: sensitivity of sampled-DSE accuracy to the random sample draw,
// and the paper's choice of the *maximum* fold error (vs the average) as the
// cross-validation estimate (§3.3, §4.2's remark that errors occasionally
// rise with more data because of unlucky random selection).
#include <iostream>

#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "data/split.hpp"
#include "ml/metrics.hpp"
#include "ml/model_zoo.hpp"
#include "ml/validation.hpp"

#include "bench_util.hpp"

int main() {
  using namespace dsml;
  const auto sweep = dse::run_design_space_sweep("applu",
                                                 bench::sweep_options());
  const data::Dataset full = dse::sweep_dataset(sweep);

  std::cout << "Ablation A1 — variance of NN-E true error across five "
               "independent random samples (applu)\n";
  {
    TablePrinter table({"rate", "mean err %", "min", "max"});
    for (double rate : {0.01, 0.02, 0.05}) {
      std::vector<double> errors;
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        Rng rng(seed * 1234567);
        const auto idx =
            data::sample_fraction(full.n_rows(), rate, rng, 10);
        const data::Dataset train = full.select_rows(idx);
        auto model = ml::make_model("NN-E").make();
        model->fit(train);
        errors.push_back(ml::mape(model->predict(full), full.target()));
      }
      table.add_row({strings::format_double(rate * 100, 0) + "%",
                     strings::format_double(stats::mean(errors), 2),
                     strings::format_double(stats::min(errors), 2),
                     strings::format_double(stats::max(errors), 2)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Ablation A2 — CV estimate criterion: max fold error vs "
               "average fold error as a predictor of the true error "
               "(paper §3.3 prefers the maximum)\n";
  {
    TablePrinter table({"model", "rate", "est avg", "est max", "true"});
    Rng rng(42);
    for (double rate : {0.01, 0.03}) {
      const auto idx = data::sample_fraction(full.n_rows(), rate, rng, 10);
      const data::Dataset train = full.select_rows(idx);
      for (const char* name : {"NN-E", "NN-S", "LR-B"}) {
        const auto nm = ml::make_model(name);
        const auto est = ml::estimate_error(nm.make, train);
        auto model = nm.make();
        model->fit(train);
        const double true_err =
            ml::mape(model->predict(full), full.target());
        table.add_row({name, strings::format_double(rate * 100, 0) + "%",
                       strings::format_double(est.average, 2),
                       strings::format_double(est.maximum, 2),
                       strings::format_double(true_err, 2)});
      }
    }
    table.print(std::cout);
  }
  return 0;
}
