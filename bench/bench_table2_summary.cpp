// Table 2: the best accuracy and the model that achieves it, for single and
// multi-processor chronological predictive modelling.
#include "common/strings.hpp"
#include "common/table.hpp"

#include "bench_util.hpp"

int main() {
  using namespace dsml;
  std::cout << "Table 2 — best chronological prediction error per family "
               "(paper: Xeon 2.1 LR-E, Pentium D 2.2 LR-E, Pentium 4 1.5 "
               "LR-E, Opteron 2.1 LR-B/LR-S, Opteron-2 3.1, Opteron-4 3.2, "
               "Opteron-8 3.5 LR-B/LR-S)\n";
  TablePrinter table({"family", "best err %", "method(s)", "paper err %",
                      "paper method"});
  struct PaperRow {
    specdata::Family family;
    const char* err;
    const char* method;
  };
  const PaperRow paper[] = {
      {specdata::Family::kXeon, "2.1", "LR-E"},
      {specdata::Family::kPentiumD, "2.2", "LR-E"},
      {specdata::Family::kPentium4, "1.5", "LR-E"},
      {specdata::Family::kOpteron, "2.1", "LR-B/LR-S"},
      {specdata::Family::kOpteron2, "3.1", "LR-B/LR-S"},
      {specdata::Family::kOpteron4, "3.2", "LR-B/LR-S"},
      {specdata::Family::kOpteron8, "3.5", "LR-B/LR-S"},
  };
  for (const auto& row : paper) {
    const auto result = bench::chronological_for_family(row.family);
    const auto names = result.best_names(0.05);
    table.add_row({to_string(row.family),
                   strings::format_double(result.best().error.mean, 2),
                   strings::join(names, "/"), row.err, row.method});
  }
  table.print(std::cout);
  return 0;
}
