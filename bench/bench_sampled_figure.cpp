// Generic body for the per-application sampled-DSE figure benches
// (Figures 2–6). Each bench target compiles this file with DSML_BENCH_APP
// and DSML_BENCH_FIGURE set (see bench/CMakeLists.txt).
#include "bench_util.hpp"

int main() {
  const auto result = dsml::bench::sampled_dse_for_app(DSML_BENCH_APP);
  dsml::bench::print_sampled_figure(result, DSML_BENCH_FIGURE);
  return 0;
}
